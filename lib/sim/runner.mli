(** Replication runner: estimates reward variables over many independent
    terminating simulation runs, with confidence intervals.

    Replication [i] always uses random substream [i] of the given seed, so
    estimates are reproducible and independent of how replications are
    spread across domains (up to floating-point summation order when
    merging per-domain accumulators). *)

type spec = private {
  model : San.Model.t;
  horizon : float;
  rewards : Reward.spec list;
  extra_observers : (unit -> Observer.t) list;
  stop : (San.Marking.t -> bool) option;
  max_events : int;
}

val spec :
  ?extra_observers:(unit -> Observer.t) list ->
  ?stop:(San.Marking.t -> bool) ->
  ?max_events:int ->
  model:San.Model.t ->
  horizon:float ->
  Reward.spec list ->
  spec
(** Validates that [horizon] covers every reward window
    ([Invalid_argument] otherwise) and that at least one reward is
    given. [extra_observers] are fresh-per-replication hooks (invariant
    checkers, traces). *)

type result = {
  name : string;  (** reward name *)
  ci : Stats.Ci.t;
  welford : Stats.Welford.t;
      (** accumulator over the defined (non-nan) replication values *)
  n_defined : int;  (** replications where the reward was defined *)
  n_runs : int;  (** total replications *)
}

type progress = {
  completed : int;  (** replications finished so far *)
  target : int;
      (** [reps] for {!run}; [max_reps] for {!run_until} (which usually
          stops well short of it) *)
  elapsed : float;  (** wall-clock seconds since the call started *)
  eta : float option;
      (** estimated wall-clock seconds to completion: linear scaling for
          {!run}, 1/√n extrapolation of the worst interval for
          {!run_until}; [None] before the first replication *)
  worst_rel_hw : float;
      (** the widest current interval, as judged by {!run_until}'s
          stopping rule: relative half-width, or absolute when the mean
          is 0, or [infinity] while undefined (n < 2) *)
  cis : (string * Stats.Ci.t) list;
      (** current interval per reward, in spec order *)
}
(** A progress report, passed to the [?progress] callback after every
    chunk ({!run}) or batch ({!run_until}) of replications. Callbacks run
    on the calling domain, between batches — never concurrently. *)

val run_one :
  ?metrics:Metrics.t ->
  ?profile:Obs.Profile.t ->
  ?record:Trajectory.sink * int ->
  spec ->
  Prng.Stream.t ->
  float array
(** One replication; returns the reward values in spec order. [record]
    attaches the sink's recording observer and, once the run finishes,
    offers the trajectory for retention under the given replication
    index. *)

val run :
  ?domains:int ->
  ?confidence:float ->
  ?metrics:Metrics.t ->
  ?profile:Obs.Profile.t ->
  ?convergence:Obs.Convergence.t ->
  ?progress:(progress -> unit) ->
  ?record:Trajectory.sink ->
  seed:int64 ->
  reps:int ->
  spec ->
  result list
(** [run ~seed ~reps spec] executes [reps] replications and aggregates.
    [domains] > 1 spreads replications over that many OCaml domains
    (default 1). Results come back in spec order.

    [metrics] accumulates engine telemetry over every replication (each
    domain counts into its own sink; they are merged here, and the
    call's wall-clock time is added — see {!Metrics}). [profile]
    attributes phase self-times the same way: each domain block runs on
    its own {!Obs.Profile.fork} (spans labelled with the block's worker
    index), captures its GC deltas inside the owning domain, and the
    forks merge back in block order. [convergence] records, per reward
    and per merged chunk, the running estimate and CI half-width into
    the given recorder — and, like [progress], forces chunked execution
    so a trajectory exists. [progress] is called after each chunk of
    replications; requesting progress chunks the work (~20 chunks) but
    does not change the estimates, since replication [i] always runs on
    substream [i].

    [record] collects trajectories and occupancy statistics into the
    given {!Trajectory.sink}. Recording is {e bit-deterministic} in the
    domain count: replications accumulate into per-segment sub-sinks (64
    consecutive replications each), domain blocks are aligned to segment
    boundaries, and segments merge back in global order — retained
    trajectories {e and} occupancy sums are identical for any [domains]
    given the same seed. *)

val run_until :
  ?domains:int ->
  ?confidence:float ->
  ?batch:int ->
  ?max_reps:int ->
  ?metrics:Metrics.t ->
  ?profile:Obs.Profile.t ->
  ?convergence:Obs.Convergence.t ->
  ?progress:(progress -> unit) ->
  ?record:Trajectory.sink ->
  rel_precision:float ->
  seed:int64 ->
  spec ->
  result list
(** Sequential stopping, à la Möbius: run replications in batches (default
    500) until {e every} reward's interval satisfies
    [half_width <= rel_precision · |mean|] (rewards whose mean is 0 after a
    batch are judged by absolute half-width against [rel_precision]), or
    [max_reps] (default 100_000) is reached. Replication [i] still uses
    substream [i], so a [run_until] result is a deterministic function of
    the seed and the batch/precision parameters. [metrics], [profile],
    [convergence] and [progress] behave as in {!run}, with [progress]
    called (and convergence points recorded) after every batch — the
    recorded trajectory is exactly the audit trail of the stopping rule.
    [record] behaves as in {!run}, except that it rounds the batch
    size up to a whole number of recording segments (so the stopping
    point can differ from an unrecorded run with the same batch). *)

val default_domains : unit -> int
(** A sensible domain count for this machine (recommended count capped at
    8, at least 1). *)
