type t = {
  on_init : float -> San.Marking.t -> unit;
  on_advance : float -> float -> San.Marking.t -> unit;
  on_fire : float -> San.Activity.t -> int -> San.Marking.t -> unit;
  on_finish : float -> San.Marking.t -> unit;
}

let nop =
  {
    on_init = (fun _ _ -> ());
    on_advance = (fun _ _ _ -> ());
    on_fire = (fun _ _ _ _ -> ());
    on_finish = (fun _ _ -> ());
  }

let combine obs =
  {
    on_init = (fun t m -> List.iter (fun o -> o.on_init t m) obs);
    on_advance = (fun t0 t1 m -> List.iter (fun o -> o.on_advance t0 t1 m) obs);
    on_fire = (fun t a c m -> List.iter (fun o -> o.on_fire t a c m) obs);
    on_finish = (fun t m -> List.iter (fun o -> o.on_finish t m) obs);
  }
