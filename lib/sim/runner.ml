type spec = {
  model : San.Model.t;
  horizon : float;
  rewards : Reward.spec list;
  extra_observers : (unit -> Observer.t) list;
  stop : (San.Marking.t -> bool) option;
  max_events : int;
}

let spec ?(extra_observers = []) ?stop ?(max_events = 1_000_000_000) ~model
    ~horizon rewards =
  if rewards = [] then invalid_arg "Runner.spec: no rewards given";
  List.iter
    (fun r ->
      let latest = Reward.latest_time r in
      if latest > horizon then
        invalid_arg
          (Printf.sprintf
             "Runner.spec: reward %S observes until t=%g beyond horizon %g"
             r.Reward.name latest horizon))
    rewards;
  { model; horizon; rewards; extra_observers; stop; max_events }

type result = {
  name : string;
  ci : Stats.Ci.t;
  welford : Stats.Welford.t;
  n_defined : int;
  n_runs : int;
}

let run_one s stream =
  let instances = List.map Reward.instantiate s.rewards in
  let observers =
    List.map Reward.observer instances
    @ List.map (fun make -> make ()) s.extra_observers
  in
  let cfg =
    Executor.config ~max_events:s.max_events ?stop:s.stop ~horizon:s.horizon ()
  in
  let (_ : Executor.outcome) =
    Executor.run ~model:s.model ~config:cfg ~stream
      ~observer:(Observer.combine observers)
  in
  Array.of_list (List.map Reward.value instances)

(* Run replications [first, first+count) accumulating Welford state and
   defined-counts per reward. *)
let run_block s ~root ~first ~count =
  let n_rewards = List.length s.rewards in
  let accs = Array.init n_rewards (fun _ -> Stats.Welford.create ()) in
  let defined = Array.make n_rewards 0 in
  (* [base] stays pristine (never drawn from), so replication [first + i]
     always runs on exactly substream [first + i] of the seed, regardless
     of how replications are split into blocks. *)
  let base = ref (Prng.Stream.substream root first) in
  for i = 0 to count - 1 do
    if i > 0 then base := Prng.Stream.successor !base;
    let values = run_one s (Prng.Stream.substream !base 0) in
    Array.iteri
      (fun j v ->
        if not (Float.is_nan v) then begin
          Stats.Welford.add accs.(j) v;
          defined.(j) <- defined.(j) + 1
        end)
      values
  done;
  (accs, defined)

let default_domains () =
  Int.max 1 (Int.min 8 (Domain.recommended_domain_count ()))

(* Contiguous near-equal blocks covering [first, first + count). *)
let blocks_of ~domains ~first ~count =
  let base = count / domains and extra = count mod domains in
  List.init domains (fun d ->
      let c = base + if d < extra then 1 else 0 in
      let f = first + (d * base) + Int.min d extra in
      (f, c))

let run_blocks s ~root ~domains blocks =
  if domains = 1 then
    List.map (fun (first, count) -> run_block s ~root ~first ~count) blocks
  else begin
    let handles =
      List.map
        (fun (first, count) ->
          Domain.spawn (fun () -> run_block s ~root ~first ~count))
        blocks
    in
    List.map Domain.join handles
  end

let run ?(domains = 1) ?(confidence = 0.95) ~seed ~reps s =
  if reps <= 0 then invalid_arg "Runner.run: reps must be >= 1";
  if domains <= 0 then invalid_arg "Runner.run: domains must be >= 1";
  let root = Prng.Stream.create ~seed in
  let domains = Int.min domains reps in
  let blocks = blocks_of ~domains ~first:0 ~count:reps in
  let results = run_blocks s ~root ~domains blocks in
  let n_rewards = List.length s.rewards in
  let merged_accs =
    Array.init n_rewards (fun j ->
        List.fold_left
          (fun acc (accs, _) -> Stats.Welford.merge acc accs.(j))
          (Stats.Welford.create ()) results)
  in
  let merged_defined =
    Array.init n_rewards (fun j ->
        List.fold_left (fun acc (_, defined) -> acc + defined.(j)) 0 results)
  in
  List.mapi
    (fun j r ->
      {
        name = r.Reward.name;
        ci = Stats.Ci.of_welford ~confidence merged_accs.(j);
        welford = merged_accs.(j);
        n_defined = merged_defined.(j);
        n_runs = reps;
      })
    s.rewards

let run_until ?(domains = 1) ?(confidence = 0.95) ?(batch = 500)
    ?(max_reps = 100_000) ~rel_precision ~seed s =
  if not (rel_precision > 0.0) then
    invalid_arg "Runner.run_until: rel_precision must be > 0";
  if batch <= 0 then invalid_arg "Runner.run_until: batch must be > 0";
  let root = Prng.Stream.create ~seed in
  let n_rewards = List.length s.rewards in
  let accs = Array.init n_rewards (fun _ -> Stats.Welford.create ()) in
  let defined = Array.make n_rewards 0 in
  let total = ref 0 in
  let precise_enough () =
    !total >= 2
    && Array.for_all
         (fun acc ->
           let ci = Stats.Ci.of_welford ~confidence acc in
           (not (Float.is_nan ci.Stats.Ci.half_width))
           &&
           if ci.Stats.Ci.mean = 0.0 then
             ci.Stats.Ci.half_width <= rel_precision
           else Stats.Ci.relative_half_width ci <= rel_precision)
         accs
  in
  while (not (precise_enough ())) && !total < max_reps do
    let count = Int.min batch (max_reps - !total) in
    let d = Int.max 1 (Int.min domains count) in
    let results =
      run_blocks s ~root ~domains:d (blocks_of ~domains:d ~first:!total ~count)
    in
    List.iter
      (fun (batch_accs, batch_defined) ->
        Array.iteri
          (fun j acc ->
            accs.(j) <- Stats.Welford.merge accs.(j) acc;
            defined.(j) <- defined.(j) + batch_defined.(j);
            ignore acc)
          batch_accs)
      results;
    total := !total + count
  done;
  List.mapi
    (fun j r ->
      {
        name = r.Reward.name;
        ci = Stats.Ci.of_welford ~confidence accs.(j);
        welford = accs.(j);
        n_defined = defined.(j);
        n_runs = !total;
      })
    s.rewards
