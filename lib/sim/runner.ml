type spec = {
  model : San.Model.t;
  horizon : float;
  rewards : Reward.spec list;
  extra_observers : (unit -> Observer.t) list;
  stop : (San.Marking.t -> bool) option;
  max_events : int;
}

let spec ?(extra_observers = []) ?stop ?(max_events = 1_000_000_000) ~model
    ~horizon rewards =
  if rewards = [] then invalid_arg "Runner.spec: no rewards given";
  List.iter
    (fun r ->
      let latest = Reward.latest_time r in
      if latest > horizon then
        invalid_arg
          (Printf.sprintf
             "Runner.spec: reward %S observes until t=%g beyond horizon %g"
             r.Reward.name latest horizon))
    rewards;
  { model; horizon; rewards; extra_observers; stop; max_events }

type result = {
  name : string;
  ci : Stats.Ci.t;
  welford : Stats.Welford.t;
  n_defined : int;
  n_runs : int;
}

type progress = {
  completed : int;
  target : int;
  elapsed : float;
  eta : float option;
  worst_rel_hw : float;
  cis : (string * Stats.Ci.t) list;
}

(* Durations come from the monotonic clock: a wall-time step must not
   corrupt elapsed/eta figures or the wall time fed to Metrics. *)
let now () = Obs.Clock.ns_to_s (Obs.Clock.now_ns ())

let run_one ?metrics ?profile ?record s stream =
  let instances = List.map Reward.instantiate s.rewards in
  let observers =
    List.map Reward.observer instances
    @ List.map (fun make -> make ()) s.extra_observers
    @
    match record with
    | Some (sink, _) -> [ Trajectory.observer sink ]
    | None -> []
  in
  let cfg =
    Executor.config ~max_events:s.max_events ?stop:s.stop ~horizon:s.horizon ()
  in
  let (_ : Executor.outcome) =
    Executor.run ?metrics ?profile ~model:s.model ~config:cfg ~stream
      ~observer:(Observer.combine observers) ()
  in
  (match record with
  | Some (sink, rep) -> Trajectory.offer sink ~rep
  | None -> ());
  Array.of_list (List.map Reward.value instances)

(* Trajectory recording must aggregate identically for any ~domains split,
   including the floating-point occupancy sums. Replications are grouped
   into fixed global segments of [record_segment] consecutive indices;
   each segment accumulates into its own fork of the caller's sink, domain
   blocks are aligned to segment boundaries, and segment sinks merge in
   global segment order — the same float-add sequence regardless of how
   segments are spread over domains. *)
let record_segment = 64

(* Run replications [first, first+count) accumulating Welford state and
   defined-counts per reward, plus an optional per-block metrics sink
   and profiler fork (one each per block, so domains never share one)
   and per-segment trajectory sinks (forked from [record], returned in
   segment order). GC deltas are captured here, inside the domain that
   owns the fork, before the block result crosses back. *)
let run_block s ~root ~first ~count ~with_metrics ~profile ~tid ~record =
  let metrics =
    if with_metrics then Some (Metrics.create ~model:s.model) else None
  in
  let prof = Option.map (fun p -> Obs.Profile.fork ~tid p) profile in
  let sinks = ref [] in
  let record_for rep =
    match record with
    | None -> None
    | Some parent -> (
        let seg = rep / record_segment in
        match !sinks with
        | (s0, sink) :: _ when s0 = seg -> Some (sink, rep)
        | _ ->
            let sink = Trajectory.fork parent in
            sinks := (seg, sink) :: !sinks;
            Some (sink, rep))
  in
  let n_rewards = List.length s.rewards in
  let accs = Array.init n_rewards (fun _ -> Stats.Welford.create ()) in
  let defined = Array.make n_rewards 0 in
  (* [base] stays pristine (never drawn from), so replication [first + i]
     always runs on exactly substream [first + i] of the seed, regardless
     of how replications are split into blocks. *)
  let base = ref (Prng.Stream.substream root first) in
  for i = 0 to count - 1 do
    if i > 0 then base := Prng.Stream.successor !base;
    let values =
      run_one ?metrics ?profile:prof
        ?record:(record_for (first + i))
        s
        (Prng.Stream.substream !base 0)
    in
    Array.iteri
      (fun j v ->
        if not (Float.is_nan v) then begin
          Stats.Welford.add accs.(j) v;
          defined.(j) <- defined.(j) + 1
        end)
      values
  done;
  Option.iter Obs.Profile.gc_capture prof;
  (accs, defined, metrics, prof, List.rev_map snd !sinks)

let default_domains () =
  Int.max 1 (Int.min 8 (Domain.recommended_domain_count ()))

(* Contiguous near-equal blocks covering [first, first + count). *)
let blocks_of ~domains ~first ~count =
  let base = count / domains and extra = count mod domains in
  List.init domains (fun d ->
      let c = base + if d < extra then 1 else 0 in
      let f = first + (d * base) + Int.min d extra in
      (f, c))

(* Like blocks_of, but block boundaries fall on recording-segment
   boundaries (near-equal in whole segments), so no segment straddles two
   domains. Requires [first] to be a multiple of [record_segment]; may
   return fewer than [domains] blocks. *)
let blocks_of_aligned ~domains ~first ~count =
  let seg = record_segment in
  let nseg = (count + seg - 1) / seg in
  let d = Int.max 1 (Int.min domains nseg) in
  let base = nseg / d and extra = nseg mod d in
  List.init d (fun i ->
      let lo = (i * base) + Int.min i extra in
      let hi = lo + base + if i < extra then 1 else 0 in
      (first + (lo * seg), Int.min count (hi * seg) - (lo * seg)))

let run_blocks s ~root ~with_metrics ~profile ~record blocks =
  match blocks with
  | [ (first, count) ] ->
      [ run_block s ~root ~first ~count ~with_metrics ~profile ~tid:0 ~record ]
  | _ ->
      let handles =
        List.mapi
          (fun tid (first, count) ->
            Domain.spawn (fun () ->
                run_block s ~root ~first ~count ~with_metrics ~profile ~tid
                  ~record))
          blocks
      in
      List.map Domain.join handles

(* Fold one run_blocks result into the shared accumulators (and the
   caller's metrics and trajectory sinks), preserving block order so
   estimates — and recorded occupancy sums — stay deterministic. *)
let consume ~accs ~defined ~metrics ~profile ~record results =
  List.iter
    (fun (block_accs, block_defined, block_metrics, block_prof, block_sinks) ->
      Array.iteri
        (fun j acc ->
          accs.(j) <- Stats.Welford.merge accs.(j) acc;
          defined.(j) <- defined.(j) + block_defined.(j))
        block_accs;
      (match (metrics, block_metrics) with
      | Some m, Some bm -> Metrics.merge ~into:m bm
      | (Some _ | None), _ -> ());
      (match (profile, block_prof) with
      | Some p, Some bp -> Obs.Profile.merge ~into:p bp
      | (Some _ | None), _ -> ());
      match record with
      | Some sink ->
          List.iter (fun bs -> Trajectory.merge ~into:sink bs) block_sinks
      | None -> ())
    results

(* The stopping criterion of run_until, also reported as the "worst"
   interval in progress records: relative half-width, judged absolutely
   when the mean is 0, [infinity] while the interval is undefined. *)
let interval_badness ~confidence acc =
  let ci = Stats.Ci.of_welford ~confidence acc in
  if Float.is_nan ci.Stats.Ci.half_width then infinity
  else if ci.Stats.Ci.mean = 0.0 then ci.Stats.Ci.half_width
  else Stats.Ci.relative_half_width ci

let worst_badness ~confidence accs =
  Array.fold_left
    (fun w acc -> Float.max w (interval_badness ~confidence acc))
    0.0 accs

let emit_progress ~progress ~confidence ~rewards ~accs ~t0 ~completed ~target
    ~estimated =
  match progress with
  | None -> ()
  | Some f ->
      let elapsed = now () -. t0 in
      let cis =
        List.mapi
          (fun j (r : Reward.spec) ->
            (r.Reward.name, Stats.Ci.of_welford ~confidence accs.(j)))
          rewards
      in
      let eta =
        if completed <= 0 then None
        else
          let remaining = Int.max 0 (estimated - completed) in
          Some (elapsed *. float_of_int remaining /. float_of_int completed)
      in
      f
        {
          completed;
          target;
          elapsed;
          eta;
          worst_rel_hw = worst_badness ~confidence accs;
          cis;
        }

(* One convergence point per reward after each merged chunk/batch:
   recorded from the coordinating thread on the merged accumulators, so
   the trajectory is the deterministic sequence of published estimates. *)
let record_convergence ~convergence ~confidence ~rewards ~accs ~completed =
  match convergence with
  | None -> ()
  | Some conv ->
      List.iteri
        (fun j (r : Reward.spec) ->
          let ci = Stats.Ci.of_welford ~confidence accs.(j) in
          Obs.Convergence.record conv ~measure:r.Reward.name ~n:completed
            ~value:ci.Stats.Ci.mean ~half_width:ci.Stats.Ci.half_width
            ~confidence)
        rewards

let results_of ~confidence ~rewards ~accs ~defined ~n_runs =
  List.mapi
    (fun j (r : Reward.spec) ->
      {
        name = r.Reward.name;
        ci = Stats.Ci.of_welford ~confidence accs.(j);
        welford = accs.(j);
        n_defined = defined.(j);
        n_runs;
      })
    rewards

let run ?(domains = 1) ?(confidence = 0.95) ?metrics ?profile ?convergence
    ?progress ?record ~seed ~reps s =
  if reps <= 0 then invalid_arg "Runner.run: reps must be >= 1";
  if domains <= 0 then invalid_arg "Runner.run: domains must be >= 1";
  let t0 = now () in
  let root = Prng.Stream.create ~seed in
  let domains = Int.min domains reps in
  let n_rewards = List.length s.rewards in
  let accs = Array.init n_rewards (fun _ -> Stats.Welford.create ()) in
  let defined = Array.make n_rewards 0 in
  let with_metrics = Option.is_some metrics in
  (* With a progress callback or a convergence recorder, replications
     run in ~20 chunks so the caller hears from us (and the recorder
     sees a trajectory, not one point); substream-per-replication keeps
     the estimates identical either way. Recording rounds chunks up to
     whole segments so chunking cannot change how segments are formed. *)
  let chunk =
    if Option.is_none progress && Option.is_none convergence then reps
    else
      let c = Int.max domains ((reps + 19) / 20) in
      if Option.is_some record then
        (c + record_segment - 1) / record_segment * record_segment
      else c
  in
  let completed = ref 0 in
  while !completed < reps do
    let count = Int.min chunk (reps - !completed) in
    let d = Int.max 1 (Int.min domains count) in
    let blocks =
      if Option.is_some record then
        blocks_of_aligned ~domains:d ~first:!completed ~count
      else blocks_of ~domains:d ~first:!completed ~count
    in
    let results = run_blocks s ~root ~with_metrics ~profile ~record blocks in
    consume ~accs ~defined ~metrics ~profile ~record results;
    completed := !completed + count;
    record_convergence ~convergence ~confidence ~rewards:s.rewards ~accs
      ~completed:!completed;
    emit_progress ~progress ~confidence ~rewards:s.rewards ~accs ~t0
      ~completed:!completed ~target:reps ~estimated:reps
  done;
  (match metrics with
  | Some m -> Metrics.add_wall m (now () -. t0)
  | None -> ());
  results_of ~confidence ~rewards:s.rewards ~accs ~defined ~n_runs:reps

let run_until ?(domains = 1) ?(confidence = 0.95) ?(batch = 500)
    ?(max_reps = 100_000) ?metrics ?profile ?convergence ?progress ?record
    ~rel_precision ~seed s =
  if not (rel_precision > 0.0) then
    invalid_arg "Runner.run_until: rel_precision must be > 0";
  if batch <= 0 then invalid_arg "Runner.run_until: batch must be > 0";
  (* Recording aligns batches to whole segments (see record_segment). *)
  let batch =
    if Option.is_some record then
      (batch + record_segment - 1) / record_segment * record_segment
    else batch
  in
  let t0 = now () in
  let root = Prng.Stream.create ~seed in
  let n_rewards = List.length s.rewards in
  let accs = Array.init n_rewards (fun _ -> Stats.Welford.create ()) in
  let defined = Array.make n_rewards 0 in
  let with_metrics = Option.is_some metrics in
  let total = ref 0 in
  let precise_enough () =
    !total >= 2
    && worst_badness ~confidence accs <= rel_precision
  in
  (* Half-widths shrink like 1/sqrt(n), so the worst interval needs about
     n · (badness / target)² replications in total; the ETA scales the
     elapsed time to that estimate (capped at max_reps). *)
  let estimated_total () =
    let w = worst_badness ~confidence accs in
    if w <= rel_precision then !total
    else if Float.is_finite w && !total > 0 then
      let n = float_of_int !total *. ((w /. rel_precision) ** 2.0) in
      Int.min max_reps
        (Int.max !total (int_of_float (Float.min n (float_of_int max_reps))))
    else max_reps
  in
  while (not (precise_enough ())) && !total < max_reps do
    let count = Int.min batch (max_reps - !total) in
    let d = Int.max 1 (Int.min domains count) in
    let blocks =
      if Option.is_some record then
        blocks_of_aligned ~domains:d ~first:!total ~count
      else blocks_of ~domains:d ~first:!total ~count
    in
    let results = run_blocks s ~root ~with_metrics ~profile ~record blocks in
    consume ~accs ~defined ~metrics ~profile ~record results;
    total := !total + count;
    record_convergence ~convergence ~confidence ~rewards:s.rewards ~accs
      ~completed:!total;
    emit_progress ~progress ~confidence ~rewards:s.rewards ~accs ~t0
      ~completed:!total ~target:max_reps ~estimated:(estimated_total ())
  done;
  (match metrics with
  | Some m -> Metrics.add_wall m (now () -. t0)
  | None -> ());
  results_of ~confidence ~rewards:s.rewards ~accs ~defined ~n_runs:!total
