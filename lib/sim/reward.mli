(** Reward variables: the measures estimated from a simulation run.

    The taxonomy follows Möbius reward variables: rate rewards (functions
    of the marking) evaluated at an instant of time or accumulated over an
    interval, and impulse rewards earned at activity firings. Two extra
    shapes used by the ITUA measures are provided: {e ever} (did a
    predicate hold at any point — the paper's unreliability) and {e final}
    (a function of the marking at the horizon — used for measures recorded
    into accumulator places).

    A [spec] is a pure description; {!instantiate} produces the per-run
    observer plus a function extracting the replication's value. A value
    may be [nan] to mean "undefined in this replication" (e.g. the
    fraction of corrupt hosts in an excluded domain when no domain was
    excluded); the runner aggregates over defined values only and reports
    how many replications were defined. *)

type spec = {
  name : string;
  kind : kind;
}

and kind =
  | Time_average of {
      f : San.Marking.t -> float;
      from_ : float;
      until : float;
    }
      (** (1/(until-from)) ∫ f(marking(t)) dt over [from, until]: the
          paper's interval-of-time measures, e.g. unavailability with [f]
          the improper-service indicator. *)
  | Integral of { f : San.Marking.t -> float; from_ : float; until : float }
      (** ∫ f dt without normalization. *)
  | Instant of { f : San.Marking.t -> float; at : float }
      (** f(marking(at)), right-continuous (after any firings at [at]). *)
  | Ever of { pred : San.Marking.t -> bool; until : float }
      (** 1.0 if [pred] held at any instant in [0, until], else 0.0:
          unreliability. Checked at t=0 and after every firing. *)
  | First_passage of { pred : San.Marking.t -> bool }
      (** Time at which [pred] first held; [nan] if it never did. *)
  | Impulse of {
      f : San.Activity.t -> int -> San.Marking.t -> float;
      from_ : float;
      until : float;
    }
      (** Sum of [f activity case marking] over firings in the window
          ([marking] is post-firing). *)
  | Final of { f : San.Marking.t -> float }
      (** f of the marking at the horizon. *)
  | Custom of { make : unit -> Observer.t * (unit -> float); window : float }
      (** Escape hatch: [make] builds a fresh per-replication observer and
          a value extractor; [window] is the latest time it observes (for
          horizon validation). Used for measures that need bespoke latching,
          e.g. a mean over per-application first-passage indicators. *)

val time_average :
  name:string -> ?from_:float -> until:float -> (San.Marking.t -> float) ->
  spec

val probability_in_interval :
  name:string -> ?from_:float -> until:float -> (San.Marking.t -> bool) ->
  spec
(** Time-averaged indicator: fraction of the interval during which the
    predicate held. *)

val instant : name:string -> at:float -> (San.Marking.t -> float) -> spec
val ever : name:string -> until:float -> (San.Marking.t -> bool) -> spec
val first_passage : name:string -> (San.Marking.t -> bool) -> spec
val final : name:string -> (San.Marking.t -> float) -> spec

val impulse :
  name:string -> ?from_:float -> until:float ->
  (San.Activity.t -> int -> San.Marking.t -> float) -> spec

val custom :
  name:string -> window:float ->
  (unit -> Observer.t * (unit -> float)) -> spec

val latest_time : spec -> float
(** The last time the spec observes ([infinity] for [First_passage] and
    [Final] is not required; returns the window end, or 0 for shapes that
    only need the horizon). Used by the runner to check the horizon covers
    every reward window. *)

type instance
(** Per-replication estimator state. *)

val instantiate : spec -> instance
val observer : instance -> Observer.t
val value : instance -> float
(** The replication's value; call after the run finished. *)
