(** Pending-event set of the simulator: a binary min-heap of scheduled
    activity completions ordered by time, with FIFO tie-breaking on equal
    times (insertion sequence) so runs are deterministic.

    Entries carry the scheduling {e version} of their activity; the
    executor bumps an activity's version to cancel its pending entry
    (lazy deletion), so [pop] can return stale entries, which the caller
    must detect by comparing versions. *)

type entry = { time : float; seq : int; act : int; version : int }

type t

val create : unit -> t

val push : t -> time:float -> act:int -> version:int -> unit
(** Schedules activity [act] at [time]. [time] must be finite and
    non-negative. *)

val pop : t -> entry option
(** Removes and returns the earliest entry, or [None] when empty. *)

val copy : t -> t
(** [copy h] is an independent heap with the same entries and insertion
    counter, so pops from the copy return the same sequence as pops from
    the original. Used to checkpoint executor state for the splitting
    engine. *)

val peek_time : t -> float option

val size : t -> int
(** Number of entries, including stale ones. *)

val clear : t -> unit
