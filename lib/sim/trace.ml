let dump_marking model ppf m =
  Array.iter
    (fun p ->
      let v = San.Marking.get m p in
      if v <> 0 then Format.fprintf ppf "    %s = %d@." (San.Place.name p) v)
    (San.Model.places model);
  Array.iter
    (fun p ->
      let v = San.Marking.fget m p in
      if v <> 0.0 then
        Format.fprintf ppf "    %s = %g@." (San.Place.fname p) v)
    (San.Model.float_places model)

let observer ?(show_marking = false) ~model ppf =
  {
    Observer.nop with
    on_init =
      (fun t m ->
        Format.fprintf ppf "t=%-10.4f init@." t;
        if show_marking then dump_marking model ppf m);
    on_fire =
      (fun t a case m ->
        Format.fprintf ppf "t=%-10.4f fire %s%s@." t a.San.Activity.name
          (if Array.length a.San.Activity.cases > 1 then
             Printf.sprintf " case %d" case
           else "");
        if show_marking then dump_marking model ppf m);
    on_finish = (fun t _ -> Format.fprintf ppf "t=%-10.4f end@." t);
  }
