type result = {
  ci : Stats.Ci.t;
  batch_means : float array;
  warmup_mean : float;
}

let estimate ?(confidence = 0.95) ~model ~f ~warmup ~batch_length ~batches
    ~stream () =
  if batches < 2 then invalid_arg "Steady.estimate: batches must be >= 2";
  if batch_length <= 0.0 then
    invalid_arg "Steady.estimate: batch_length must be > 0";
  if warmup < 0.0 then invalid_arg "Steady.estimate: warmup must be >= 0";
  let horizon = warmup +. (float_of_int batches *. batch_length) in
  let integrals = Array.make batches 0.0 in
  let warmup_integral = ref 0.0 in
  (* Accumulate f's time integral, splitting each constant-marking
     interval across the batch boundaries it spans. *)
  let accumulate t0 t1 m =
    let v = f m in
    if v <> 0.0 then begin
      (* Warmup part. *)
      let w_hi = Float.min t1 warmup in
      if w_hi > t0 then warmup_integral := !warmup_integral +. (v *. (w_hi -. t0));
      (* Batch parts. *)
      let lo = Float.max t0 warmup and hi = Float.min t1 horizon in
      if hi > lo then begin
        let first = int_of_float ((lo -. warmup) /. batch_length) in
        let first = Int.min first (batches - 1) in
        let rec fill b lo =
          if b < batches && lo < hi then begin
            let b_end = warmup +. (float_of_int (b + 1) *. batch_length) in
            let seg_hi = Float.min hi b_end in
            integrals.(b) <- integrals.(b) +. (v *. (seg_hi -. lo));
            fill (b + 1) seg_hi
          end
        in
        fill first lo
      end
    end
  in
  let observer = { Observer.nop with on_advance = accumulate } in
  let cfg = Executor.config ~horizon () in
  let (_ : Executor.outcome) =
    Executor.run ~model ~config:cfg ~stream ~observer ()
  in
  let batch_means = Array.map (fun x -> x /. batch_length) integrals in
  let acc = Stats.Welford.create () in
  Array.iter (Stats.Welford.add acc) batch_means;
  {
    ci = Stats.Ci.of_welford ~confidence acc;
    batch_means;
    warmup_mean = (if warmup > 0.0 then !warmup_integral /. warmup else nan);
  }
