type change = { place : string; value : float }

type step = {
  time : float;
  activity : string;
  case : int;
  changes : change list;
}

type t = {
  rep : int;
  matched : bool;
  events : int;
  horizon : float;
  init : change list;
  steps : step list;
}

type place_stats = {
  place : string;
  mean_tokens : float;
  max_tokens : float;
  hit_runs : int;
  mean_first_hit : float;
}

(* Retention priority: a stateless mix of the replication index.
   Bottom-k by priority is a deterministic, order-independent, mergeable
   "reservoir": whichever domain ran replication i, the same k survive.
   [mix] is a bijection on int64, so distinct reps never tie. *)
let priority rep = Prng.Splitmix64.mix (Int64.of_int rep)

type sink = {
  (* configuration, shared (immutably) with forks *)
  predicate : (San.Marking.t -> bool) option;
  k : int;
  max_steps : int;
  place_of_uid : San.Place.any array;
  name_of_uid : string array;
  activities : San.Activity.t array;
  n_places : int;
  (* per-run scratch: the step buffer, struct-of-arrays grown
     geometrically — steady-state recording allocates nothing per event *)
  mutable times : float array;
  mutable acts : int array;
  mutable case_ids : int array;
  mutable d_start : int array;  (* per recorded step: offset into d_* *)
  mutable d_uid : int array;
  mutable d_val : float array;
  mutable n_steps : int;
  mutable n_deltas : int;
  mutable n_events : int;
  i_uid : int array;  (* places non-zero after setup *)
  i_val : float array;
  mutable n_init : int;
  mutable run_matched : bool;
  mutable run_horizon : float;
  (* per-run occupancy scratch, indexed by place uid *)
  cur : float array;
  since : float array;
  first_hit : float array;  (* nan until the place becomes non-zero *)
  (* cross-run occupancy totals *)
  integral : float array;
  occ_max : float array;
  hit_runs : int array;
  first_hit_sum : float array;
  mutable total_time : float;
  mutable runs : int;
  mutable matched_runs : int;
  (* retained trajectories, sorted by ascending priority, length <= k *)
  mutable kept_matching : (int64 * t) list;
  mutable kept_non_matching : (int64 * t) list;
}

let make ~predicate ~k ~max_steps ~place_of_uid ~name_of_uid ~activities
    ~n_places =
  {
    predicate;
    k;
    max_steps;
    place_of_uid;
    name_of_uid;
    activities;
    n_places;
    times = [||];
    acts = [||];
    case_ids = [||];
    d_start = [||];
    d_uid = [||];
    d_val = [||];
    n_steps = 0;
    n_deltas = 0;
    n_events = 0;
    i_uid = Array.make n_places 0;
    i_val = Array.make n_places 0.0;
    n_init = 0;
    run_matched = false;
    run_horizon = Float.nan;
    cur = Array.make n_places 0.0;
    since = Array.make n_places 0.0;
    first_hit = Array.make n_places Float.nan;
    integral = Array.make n_places 0.0;
    occ_max = Array.make n_places 0.0;
    hit_runs = Array.make n_places 0;
    first_hit_sum = Array.make n_places 0.0;
    total_time = 0.0;
    runs = 0;
    matched_runs = 0;
    kept_matching = [];
    kept_non_matching = [];
  }

let sink ?(k = 10) ?(max_steps = 100_000) ?predicate ~model () =
  if k < 0 then invalid_arg "Trajectory.sink: k must be >= 0";
  if max_steps < 0 then invalid_arg "Trajectory.sink: max_steps must be >= 0";
  let n_places = San.Model.n_places model in
  let anys =
    Array.to_list
      (Array.map (fun p -> San.Place.P p) (San.Model.places model))
    @ Array.to_list
        (Array.map (fun p -> San.Place.F p) (San.Model.float_places model))
  in
  match anys with
  | [] -> invalid_arg "Trajectory.sink: model has no places"
  | a0 :: _ ->
      let place_of_uid = Array.make n_places a0 in
      List.iter
        (fun a -> place_of_uid.(San.Place.any_uid a) <- a)
        anys;
      let name_of_uid = Array.map San.Place.any_name place_of_uid in
      make ~predicate ~k ~max_steps ~place_of_uid ~name_of_uid
        ~activities:(San.Model.activities model) ~n_places

let fork sk =
  make ~predicate:sk.predicate ~k:sk.k ~max_steps:sk.max_steps
    ~place_of_uid:sk.place_of_uid ~name_of_uid:sk.name_of_uid
    ~activities:sk.activities ~n_places:sk.n_places

let value_of m = function
  | San.Place.P p -> float_of_int (San.Marking.get m p)
  | San.Place.F p -> San.Marking.fget m p

let grow_steps sk =
  let cap = Array.length sk.times in
  let cap' = Int.max 256 (2 * cap) in
  let grow a fill =
    let b = Array.make cap' fill in
    Array.blit a 0 b 0 cap;
    b
  in
  sk.times <- grow sk.times 0.0;
  sk.acts <- grow sk.acts 0;
  sk.case_ids <- grow sk.case_ids 0;
  sk.d_start <- grow sk.d_start 0

let grow_deltas sk =
  let cap = Array.length sk.d_uid in
  let cap' = Int.max 1024 (2 * cap) in
  let grow a fill =
    let b = Array.make cap' fill in
    Array.blit a 0 b 0 cap;
    b
  in
  sk.d_uid <- grow sk.d_uid 0;
  sk.d_val <- grow sk.d_val 0.0

let check_predicate sk m =
  match sk.predicate with
  | Some p when not sk.run_matched -> sk.run_matched <- p m
  | _ -> ()

let on_init sk t m =
  sk.n_steps <- 0;
  sk.n_deltas <- 0;
  sk.n_events <- 0;
  sk.n_init <- 0;
  sk.run_matched <- false;
  sk.run_horizon <- Float.nan;
  for uid = 0 to sk.n_places - 1 do
    let v = value_of m sk.place_of_uid.(uid) in
    sk.cur.(uid) <- v;
    sk.since.(uid) <- t;
    if v <> 0.0 then begin
      sk.first_hit.(uid) <- t;
      if v > sk.occ_max.(uid) then sk.occ_max.(uid) <- v;
      sk.i_uid.(sk.n_init) <- uid;
      sk.i_val.(sk.n_init) <- v;
      sk.n_init <- sk.n_init + 1
    end
    else sk.first_hit.(uid) <- Float.nan
  done;
  check_predicate sk m

let on_fire sk t (a : San.Activity.t) c m =
  sk.n_events <- sk.n_events + 1;
  let record = sk.n_steps < sk.max_steps in
  if record then begin
    if sk.n_steps >= Array.length sk.times then grow_steps sk;
    sk.times.(sk.n_steps) <- t;
    sk.acts.(sk.n_steps) <- a.San.Activity.id;
    sk.case_ids.(sk.n_steps) <- c;
    sk.d_start.(sk.n_steps) <- sk.n_deltas
  end;
  List.iter
    (fun uid ->
      let v = value_of m sk.place_of_uid.(uid) in
      (* The journal can list a place whose effect reverted it; skip. *)
      if v <> sk.cur.(uid) then begin
        sk.integral.(uid) <-
          sk.integral.(uid) +. (sk.cur.(uid) *. (t -. sk.since.(uid)));
        sk.since.(uid) <- t;
        sk.cur.(uid) <- v;
        if v > sk.occ_max.(uid) then sk.occ_max.(uid) <- v;
        if v <> 0.0 && Float.is_nan sk.first_hit.(uid) then
          sk.first_hit.(uid) <- t;
        if record then begin
          if sk.n_deltas >= Array.length sk.d_uid then grow_deltas sk;
          sk.d_uid.(sk.n_deltas) <- uid;
          sk.d_val.(sk.n_deltas) <- v;
          sk.n_deltas <- sk.n_deltas + 1
        end
      end)
    (San.Marking.journal m);
  if record then sk.n_steps <- sk.n_steps + 1;
  check_predicate sk m

let on_finish sk t _m =
  for uid = 0 to sk.n_places - 1 do
    sk.integral.(uid) <-
      sk.integral.(uid) +. (sk.cur.(uid) *. (t -. sk.since.(uid)));
    sk.since.(uid) <- t;
    let fh = sk.first_hit.(uid) in
    if not (Float.is_nan fh) then begin
      sk.hit_runs.(uid) <- sk.hit_runs.(uid) + 1;
      sk.first_hit_sum.(uid) <- sk.first_hit_sum.(uid) +. fh
    end
  done;
  sk.total_time <- sk.total_time +. t;
  sk.run_horizon <- t

let observer sk =
  {
    Observer.on_init = on_init sk;
    on_advance = (fun _ _ _ -> ());
    on_fire = on_fire sk;
    on_finish = on_finish sk;
  }

(* --- retention --- *)

let snapshot sk ~rep =
  let init =
    List.init sk.n_init (fun i ->
        { place = sk.name_of_uid.(sk.i_uid.(i)); value = sk.i_val.(i) })
  in
  let steps =
    List.init sk.n_steps (fun i ->
        let lo = sk.d_start.(i) in
        let hi =
          if i + 1 < sk.n_steps then sk.d_start.(i + 1) else sk.n_deltas
        in
        {
          time = sk.times.(i);
          activity = sk.activities.(sk.acts.(i)).San.Activity.name;
          case = sk.case_ids.(i);
          changes =
            List.init (hi - lo) (fun j ->
                {
                  place = sk.name_of_uid.(sk.d_uid.(lo + j));
                  value = sk.d_val.(lo + j);
                });
        })
  in
  {
    rep;
    matched = sk.run_matched;
    events = sk.n_events;
    horizon = sk.run_horizon;
    init;
    steps;
  }

let rec insert entry = function
  | [] -> [ entry ]
  | e :: rest as l ->
      if Int64.unsigned_compare (fst entry) (fst e) < 0 then entry :: l
      else e :: insert entry rest

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | e :: rest -> e :: take (k - 1) rest

let keep sk lst entry = take sk.k (insert entry lst)

let qualifies sk lst p =
  List.length lst < sk.k
  ||
  match List.rev lst with
  | (pmax, _) :: _ -> Int64.unsigned_compare p pmax < 0
  | [] -> true

let offer sk ~rep =
  sk.runs <- sk.runs + 1;
  if sk.run_matched then sk.matched_runs <- sk.matched_runs + 1;
  if sk.k > 0 then begin
    let p = priority rep in
    let lst = if sk.run_matched then sk.kept_matching else sk.kept_non_matching in
    if qualifies sk lst p then begin
      let lst' = keep sk lst (p, snapshot sk ~rep) in
      if sk.run_matched then sk.kept_matching <- lst'
      else sk.kept_non_matching <- lst'
    end
  end

let merge ~into src =
  if into.n_places <> src.n_places then
    invalid_arg "Trajectory.merge: sinks built for different models";
  for uid = 0 to into.n_places - 1 do
    into.integral.(uid) <- into.integral.(uid) +. src.integral.(uid);
    if src.occ_max.(uid) > into.occ_max.(uid) then
      into.occ_max.(uid) <- src.occ_max.(uid);
    into.hit_runs.(uid) <- into.hit_runs.(uid) + src.hit_runs.(uid);
    into.first_hit_sum.(uid) <-
      into.first_hit_sum.(uid) +. src.first_hit_sum.(uid)
  done;
  into.total_time <- into.total_time +. src.total_time;
  into.runs <- into.runs + src.runs;
  into.matched_runs <- into.matched_runs + src.matched_runs;
  List.iter
    (fun e -> into.kept_matching <- keep into into.kept_matching e)
    src.kept_matching;
  List.iter
    (fun e -> into.kept_non_matching <- keep into into.kept_non_matching e)
    src.kept_non_matching

let runs sk = sk.runs
let matched_runs sk = sk.matched_runs

let by_rep a b = compare a.rep b.rep
let matching sk = List.sort by_rep (List.map snd sk.kept_matching)
let non_matching sk = List.sort by_rep (List.map snd sk.kept_non_matching)
let retained sk = List.sort by_rep (matching sk @ non_matching sk)

let occupancy sk =
  List.init sk.n_places (fun uid ->
      let hit = sk.hit_runs.(uid) in
      {
        place = sk.name_of_uid.(uid);
        mean_tokens =
          (if sk.total_time > 0.0 then sk.integral.(uid) /. sk.total_time
           else 0.0);
        max_tokens = sk.occ_max.(uid);
        hit_runs = hit;
        mean_first_hit =
          (if hit > 0 then sk.first_hit_sum.(uid) /. float_of_int hit
           else Float.nan);
      })

(* --- JSON --- *)

module J = Report.Json

let changes_to_json cs =
  J.Arr
    (List.map (fun (c : change) -> J.Arr [ J.Str c.place; J.Num c.value ]) cs)

let to_json t =
  J.Obj
    [
      ("rep", J.int t.rep);
      ("matched", J.Bool t.matched);
      ("events", J.int t.events);
      ("horizon", J.Num t.horizon);
      ("init", changes_to_json t.init);
      ( "steps",
        J.Arr
          (List.map
             (fun s ->
               J.Obj
                 [
                   ("t", J.Num s.time);
                   ("act", J.Str s.activity);
                   ("case", J.int s.case);
                   ("changes", changes_to_json s.changes);
                 ])
             t.steps) );
    ]

let ( let* ) = Result.bind

let map_result f xs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
  in
  go [] xs

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_num ctx j =
  match j with
  | J.Num f -> Ok f
  | J.Null -> Ok Float.nan
  | _ -> Error (ctx ^ ": expected a number")

let as_int ctx j =
  let* f = as_num ctx j in
  Ok (int_of_float f)

let as_str ctx j =
  match J.str j with Some s -> Ok s | None -> Error (ctx ^ ": expected a string")

let as_arr ctx j =
  match J.arr j with Some l -> Ok l | None -> Error (ctx ^ ": expected an array")

let as_bool ctx j =
  match J.bool j with
  | Some b -> Ok b
  | None -> Error (ctx ^ ": expected a bool")

let num_field ctx name j =
  let* v = field name j in
  as_num (ctx ^ "." ^ name) v

let int_field ctx name j =
  let* v = field name j in
  as_int (ctx ^ "." ^ name) v

let change_of_json j =
  match j with
  | J.Arr [ J.Str place; (J.Num _ | J.Null) as v ] ->
      let* value = as_num "change" v in
      Ok { place; value }
  | _ -> Error "change: expected [\"place\", value]"

let changes_of_json ctx j =
  let* xs = as_arr ctx j in
  map_result change_of_json xs

let step_of_json j =
  let* time = num_field "step" "t" j in
  let* act = field "act" j in
  let* activity = as_str "step.act" act in
  let* case = int_field "step" "case" j in
  let* ch = field "changes" j in
  let* changes = changes_of_json "step.changes" ch in
  Ok { time; activity; case; changes }

let of_json j =
  let* rep = int_field "trajectory" "rep" j in
  let* mv = field "matched" j in
  let* matched = as_bool "trajectory.matched" mv in
  let* events = int_field "trajectory" "events" j in
  let* horizon = num_field "trajectory" "horizon" j in
  let* iv = field "init" j in
  let* init = changes_of_json "trajectory.init" iv in
  let* sv = field "steps" j in
  let* steps_json = as_arr "trajectory.steps" sv in
  let* steps = map_result step_of_json steps_json in
  Ok { rep; matched; events; horizon; init; steps }

let occupancy_to_json stats =
  J.Arr
    (List.map
       (fun s ->
         J.Obj
           [
             ("place", J.Str s.place);
             ("mean", J.Num s.mean_tokens);
             ("max", J.Num s.max_tokens);
             ("hit_runs", J.int s.hit_runs);
             ("mean_first_hit", J.Num s.mean_first_hit);
           ])
       stats)

let occupancy_of_json j =
  let* xs = as_arr "occupancy" j in
  map_result
    (fun o ->
      let* pv = field "place" o in
      let* place = as_str "occupancy.place" pv in
      let* mean_tokens = num_field "occupancy" "mean" o in
      let* max_tokens = num_field "occupancy" "max" o in
      let* hit_runs = int_field "occupancy" "hit_runs" o in
      let* mean_first_hit = num_field "occupancy" "mean_first_hit" o in
      Ok { place; mean_tokens; max_tokens; hit_runs; mean_first_hit })
    xs
