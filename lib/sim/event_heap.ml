type entry = { time : float; seq : int; act : int; version : int }

type t = {
  mutable arr : entry array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy = { time = 0.0; seq = 0; act = -1; version = -1 }

let create () = { arr = Array.make 64 dummy; size = 0; next_seq = 0 }

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let arr = Array.make (2 * Array.length h.arr) dummy in
  Array.blit h.arr 0 arr 0 h.size;
  h.arr <- arr

let push h ~time ~act ~version =
  if not (Float.is_finite time) || time < 0.0 then
    invalid_arg (Printf.sprintf "Event_heap.push: bad time %g" time);
  if h.size = Array.length h.arr then grow h;
  let e = { time; seq = h.next_seq; act; version } in
  h.next_seq <- h.next_seq + 1;
  (* Sift up. *)
  let i = ref h.size in
  h.size <- h.size + 1;
  h.arr.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lt e h.arr.(parent) then begin
      h.arr.(!i) <- h.arr.(parent);
      h.arr.(parent) <- e;
      i := parent
    end
    else continue := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.arr.(0) in
    h.size <- h.size - 1;
    let last = h.arr.(h.size) in
    h.arr.(h.size) <- dummy;
    if h.size > 0 then begin
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        let candidate j =
          if j < h.size then begin
            let against =
              if !smallest = !i then last else h.arr.(!smallest)
            in
            if lt h.arr.(j) against then smallest := j
          end
        in
        candidate l;
        candidate r;
        if !smallest = !i then begin
          h.arr.(!i) <- last;
          continue := false
        end
        else begin
          h.arr.(!i) <- h.arr.(!smallest);
          i := !smallest
        end
      done
    end;
    Some top
  end

let copy h = { arr = Array.copy h.arr; size = h.size; next_seq = h.next_seq }

let peek_time h = if h.size = 0 then None else Some h.arr.(0).time

let size h = h.size

let clear h =
  Array.fill h.arr 0 h.size dummy;
  h.size <- 0;
  h.next_seq <- 0
