exception Stabilization_diverged of string

type config = {
  horizon : float;
  max_events : int;
  max_inst_chain : int;
  stop : (San.Marking.t -> bool) option;
  compile_effects : bool;
}

let config ?(max_events = 1_000_000_000) ?(max_inst_chain = 1_000_000) ?stop
    ?(compile_effects = true) ~horizon () =
  if not (horizon > 0.0) then invalid_arg "Executor.config: horizon must be > 0";
  { horizon; max_events; max_inst_chain; stop; compile_effects }

type outcome = {
  end_time : float;
  events : int;
  stopped_early : bool;
  final : San.Marking.t;
}

type checkpoint = {
  cp_marking : San.Marking.t;
  cp_heap : Event_heap.t;
  cp_versions : int array;
  cp_scheduled : bool array;
  cp_now : float;
}

let checkpoint_time cp = cp.cp_now
let checkpoint_marking cp = cp.cp_marking

type split_outcome =
  | Finished of outcome
  | Crossed of { checkpoint : checkpoint; events : int }

type state = {
  model : San.Model.t;
  cfg : config;
  stream : Prng.Stream.t;
  prof : Obs.Profile.t option;
  marking : San.Marking.t;
  heap : Event_heap.t;
  versions : int array;  (* per activity: current scheduling version *)
  scheduled : bool array;  (* per activity: has a live heap entry *)
  inst_ids : int array;  (* ids of instantaneous activities *)
  acts : San.Activity.t array;
  deps : San.Activity.t array array;  (* place uid -> reading activities *)
  seen : int array;  (* per activity: generation stamp (see propagate) *)
  mutable gen : int;
  mutable now : float;
  mutable events : int;
  (* Run-local telemetry. Counted unconditionally (an int bump is cheaper
     than testing an option per event) and folded into the caller's
     Metrics sink, if any, once at the end of the run. *)
  firings : int array;
  cancellations : int array;
  resamples : int array;
  mutable setup_events : int;
  mutable chains : int;
  mutable chain_steps : int;
  mutable max_chain : int;
  mutable pops : int;
  mutable stale_pops : int;
  mutable depth_sum : int;
  mutable max_depth : int;
}

(* Phase-profiler shims: a single option match when profiling is off —
   the only cost the hot path pays for the instrumentation. *)
let[@inline] penter st ph =
  match st.prof with None -> () | Some p -> Obs.Profile.enter p ph

let[@inline] pleave st =
  match st.prof with None -> () | Some p -> Obs.Profile.leave p

let sample_delay st (a : San.Activity.t) =
  match a.timing with
  | San.Activity.Instantaneous -> assert false
  | San.Activity.Timed { dist; _ } ->
      penter st Obs.Profile.Sample;
      let d = Dist.sample (dist st.marking) st.stream in
      pleave st;
      d

let schedule st (a : San.Activity.t) =
  let delay = sample_delay st a in
  penter st Obs.Profile.Heap_push;
  Event_heap.push st.heap ~time:(st.now +. delay) ~act:a.id
    ~version:st.versions.(a.id);
  pleave st;
  st.scheduled.(a.id) <- true

let cancel st id =
  st.versions.(id) <- st.versions.(id) + 1;
  st.scheduled.(id) <- false

(* Re-evaluate one timed activity after a marking change it depends on. *)
let reevaluate st (a : San.Activity.t) =
  match a.timing with
  | San.Activity.Instantaneous -> ()
  | San.Activity.Timed { policy; _ } ->
      if a.enabled st.marking then begin
        if not st.scheduled.(a.id) then schedule st a
        else
          match policy with
          | San.Activity.Keep -> ()
          | San.Activity.Resample ->
              st.resamples.(a.id) <- st.resamples.(a.id) + 1;
              cancel st a.id;
              schedule st a
      end
      else if st.scheduled.(a.id) then begin
        st.cancellations.(a.id) <- st.cancellations.(a.id) + 1;
        cancel st a.id
      end

let select_case st (a : San.Activity.t) =
  if Array.length a.cases = 1 then 0
  else begin
    let weights =
      Array.map (fun c -> c.San.Activity.case_weight st.marking) a.cases
    in
    Prng.Stream.categorical st.stream weights
  end

(* Fire [a] through case [c]; returns the list of changed place uids.
   The compiled program and the IR term are built from the same source
   at model-construction time and consume the stream identically, so
   both paths produce bit-identical trajectories (pinned by a test). *)
let fire st (a : San.Activity.t) case =
  San.Marking.clear_journal st.marking;
  let ctx = { San.Effect.time = st.now; stream = Some st.stream } in
  let c = a.cases.(case) in
  if st.cfg.compile_effects then
    San.Effect.run_prog ctx c.San.Activity.prog st.marking
  else San.Effect.apply ctx c.San.Activity.effect st.marking;
  st.firings.(a.id) <- st.firings.(a.id) + 1;
  San.Marking.journal st.marking

(* Propagate a marking change: re-evaluate the fired activity and every
   activity that reads a changed place, each at most once. Deduplication
   uses a generation-stamped scratch array instead of a per-event table:
   bumping [gen] invalidates every stamp at once, so the only per-event
   cost is the activities actually visited. *)
let propagate st (fired : San.Activity.t option) changed =
  penter st Obs.Profile.Propagate;
  st.gen <- st.gen + 1;
  let g = st.gen in
  (match fired with
  | Some a ->
      st.seen.(a.San.Activity.id) <- g;
      reevaluate st a
  | None -> ());
  List.iter
    (fun uid ->
      let deps = st.deps.(uid) in
      for i = 0 to Array.length deps - 1 do
        let a = deps.(i) in
        if st.seen.(a.San.Activity.id) <> g then begin
          st.seen.(a.San.Activity.id) <- g;
          reevaluate st a
        end
      done)
    changed;
  pleave st

let enabled_instantaneous st =
  Array.fold_left
    (fun acc id ->
      let a = st.acts.(id) in
      if a.San.Activity.enabled st.marking then a :: acc else acc)
    [] st.inst_ids
  |> List.rev

(* Fire enabled instantaneous activities until none remain, choosing
   uniformly among the enabled set at each step.  [notify] is None during
   t = 0 setup (observers do not see setup firings). *)
let stabilize st ~notify =
  penter st Obs.Profile.Stabilize;
  let steps = ref 0 in
  let rec loop () =
    match enabled_instantaneous st with
    | [] -> ()
    | enabled ->
        incr steps;
        if !steps > st.cfg.max_inst_chain then
          raise
            (Stabilization_diverged
               (Printf.sprintf
                  "more than %d consecutive instantaneous firings at t=%g"
                  st.cfg.max_inst_chain st.now));
        let a = Prng.Stream.choose_list st.stream enabled in
        let case = select_case st a in
        let changed = fire st a case in
        propagate st None changed;
        (match notify with
        | Some (observer : Observer.t) ->
            st.events <- st.events + 1;
            observer.on_fire st.now a case st.marking
        | None -> st.setup_events <- st.setup_events + 1);
        loop ()
  in
  loop ();
  if !steps > 0 then begin
    st.chains <- st.chains + 1;
    st.chain_steps <- st.chain_steps + !steps;
    if !steps > st.max_chain then st.max_chain <- !steps
  end;
  pleave st

(* Build executor state: fresh from the model's initial marking, or a
   private copy of a checkpoint (so several clones can resume from the
   same checkpoint, concurrently, without sharing mutable state). *)
let make_state ~model ~cfg ~stream ~prof ~from_ =
  let acts = San.Model.activities model in
  let n = Array.length acts in
  let inst_ids =
    Array.of_list
      (Array.to_list acts
      |> List.filter San.Activity.is_instantaneous
      |> List.map (fun (a : San.Activity.t) -> a.id))
  in
  let deps =
    Array.init (San.Model.n_places model) (fun uid ->
        Array.of_list (San.Model.dependents model uid))
  in
  let marking, heap, versions, scheduled, now =
    match from_ with
    | None ->
        ( San.Model.initial_marking model,
          Event_heap.create (),
          Array.make n 0,
          Array.make n false,
          0.0 )
    | Some cp ->
        if Array.length cp.cp_versions <> n then
          invalid_arg "Executor: checkpoint is from a different model";
        (match prof with
        | None -> ()
        | Some p -> Obs.Profile.enter p Obs.Profile.Checkpoint);
        let cloned =
          ( San.Marking.copy cp.cp_marking,
            Event_heap.copy cp.cp_heap,
            Array.copy cp.cp_versions,
            Array.copy cp.cp_scheduled,
            cp.cp_now )
        in
        (match prof with None -> () | Some p -> Obs.Profile.leave p);
        cloned
  in
  {
    model;
    cfg;
    stream;
    prof;
    marking;
    heap;
    versions;
    scheduled;
    inst_ids;
    acts;
    deps;
    seen = Array.make n 0;
    gen = 0;
    now;
    events = 0;
    firings = Array.make n 0;
    cancellations = Array.make n 0;
    resamples = Array.make n 0;
    setup_events = 0;
    chains = 0;
    chain_steps = 0;
    max_chain = 0;
    pops = 0;
    stale_pops = 0;
    depth_sum = 0;
    max_depth = 0;
  }

let checkpoint_of st =
  penter st Obs.Profile.Checkpoint;
  let cp =
    {
      cp_marking = San.Marking.copy st.marking;
      cp_heap = Event_heap.copy st.heap;
      cp_versions = Array.copy st.versions;
      cp_scheduled = Array.copy st.scheduled;
      cp_now = st.now;
    }
  in
  pleave st;
  cp

(* The shared engine behind [run], [resume] and [run_to_level].

   [cross], when given, is evaluated on *stable* markings only — at the
   start of the run (after t = 0 setup for fresh runs) and after every
   timed firing once its instantaneous chain has stabilized.  Returning
   true halts the run with a checkpoint of the current state; the
   horizon advance and [on_finish] are then *not* reported, because the
   trajectory is not finished — a clone will continue it. *)
let exec ?metrics ?profile ?from_ ?cross ?check_invariants ~model ~config:cfg
    ~stream ~observer:(observer : Observer.t) () =
  let st = make_state ~model ~cfg ~stream ~prof:profile ~from_ in
  let guard () =
    match check_invariants with None -> () | Some f -> f st.marking
  in
  (match from_ with
  | None ->
      (* t = 0 setup: stabilize instantaneous activities silently, then
         schedule every enabled timed activity that the stabilization's own
         propagation has not already scheduled (scheduling it twice would
         leave two live completions racing — a doubled rate). *)
      stabilize st ~notify:None;
      Array.iter
        (fun (a : San.Activity.t) ->
          if
            (not (San.Activity.is_instantaneous a))
            && (not st.scheduled.(a.id))
            && a.enabled st.marking
          then schedule st a)
        st.acts
  | Some _ ->
      (* Checkpoints are taken at stable markings with every enabled timed
         activity already scheduled in the copied heap: nothing to set up. *)
      ());
  guard ();
  observer.Observer.on_init st.now st.marking;
  let stopped = ref false in
  let crossed = ref false in
  let check_stop () =
    match cfg.stop with
    | Some pred when pred st.marking -> stopped := true
    | Some _ | None -> ()
  in
  let check_cross () =
    match cross with
    | Some pred when (not !stopped) && pred st.marking -> crossed := true
    | Some _ | None -> ()
  in
  check_stop ();
  check_cross ();
  let finished = ref (!stopped || !crossed) in
  let last_event_time = ref st.now in
  while not !finished do
    let depth = Event_heap.size st.heap in
    penter st Obs.Profile.Heap_pop;
    let popped = Event_heap.pop st.heap in
    pleave st;
    match popped with
    | None -> finished := true
    | Some entry ->
        st.pops <- st.pops + 1;
        st.depth_sum <- st.depth_sum + depth;
        if depth > st.max_depth then st.max_depth <- depth;
        if entry.Event_heap.version <> st.versions.(entry.act) then
          st.stale_pops <- st.stale_pops + 1
        else begin
          if entry.time > cfg.horizon then begin
            (* Past the horizon: the popped completion is discarded; the
               marking holds through the end of the window. *)
            finished := true
          end
          else begin
            let a = st.acts.(entry.act) in
            if entry.time > st.now then
              observer.Observer.on_advance st.now entry.time st.marking;
            st.now <- entry.time;
            last_event_time := entry.time;
            st.scheduled.(a.id) <- false;
            st.versions.(a.id) <- st.versions.(a.id) + 1;
            let case = select_case st a in
            let changed = fire st a case in
            propagate st (Some a) changed;
            st.events <- st.events + 1;
            observer.Observer.on_fire st.now a case st.marking;
            check_stop ();
            if not !stopped then begin
              stabilize st ~notify:(Some observer);
              guard ()
            end;
            check_stop ();
            check_cross ();
            if !stopped || !crossed then finished := true;
            if st.events >= cfg.max_events then finished := true
          end
        end
  done;
  let result =
    if !crossed then Crossed { checkpoint = checkpoint_of st; events = st.events }
    else begin
      if cfg.horizon > st.now then
        observer.Observer.on_advance st.now cfg.horizon st.marking;
      observer.Observer.on_finish cfg.horizon st.marking;
      Finished
        {
          end_time = !last_event_time;
          events = st.events;
          stopped_early = !stopped;
          final = st.marking;
        }
    end
  in
  (match metrics with
  | None -> ()
  | Some m ->
      Metrics.record_run m ~firings:st.firings
        ~cancellations:st.cancellations ~resamples:st.resamples
        ~events:st.events ~setup_events:st.setup_events ~chains:st.chains
        ~chain_steps:st.chain_steps ~max_chain:st.max_chain ~pops:st.pops
        ~stale_pops:st.stale_pops ~depth_sum:st.depth_sum
        ~max_depth:st.max_depth);
  result

let finished_exn = function
  | Finished o -> o
  | Crossed _ -> assert false (* no [cross] predicate was given *)

let run ?metrics ?profile ?check_invariants ~model ~config ~stream ~observer
    () =
  finished_exn
    (exec ?metrics ?profile ?check_invariants ~model ~config ~stream ~observer
       ())

let resume ?metrics ?profile ?check_invariants ~model ~config ~stream
    ~observer checkpoint =
  finished_exn
    (exec ?metrics ?profile ?check_invariants ~from_:checkpoint ~model ~config
       ~stream ~observer ())

let run_to_level ?metrics ?profile ?from_ ?check_invariants ~model ~config
    ~stream ~observer ~importance ~threshold () =
  exec ?metrics ?profile ?from_ ?check_invariants
    ~cross:(fun m -> importance m >= threshold)
    ~model ~config ~stream ~observer ()
