exception Stabilization_diverged of string

type config = {
  horizon : float;
  max_events : int;
  max_inst_chain : int;
  stop : (San.Marking.t -> bool) option;
}

let config ?(max_events = 1_000_000_000) ?(max_inst_chain = 1_000_000) ?stop
    ~horizon () =
  if not (horizon > 0.0) then invalid_arg "Executor.config: horizon must be > 0";
  { horizon; max_events; max_inst_chain; stop }

type outcome = {
  end_time : float;
  events : int;
  stopped_early : bool;
  final : San.Marking.t;
}

type state = {
  model : San.Model.t;
  cfg : config;
  stream : Prng.Stream.t;
  marking : San.Marking.t;
  heap : Event_heap.t;
  versions : int array;  (* per activity: current scheduling version *)
  scheduled : bool array;  (* per activity: has a live heap entry *)
  inst_ids : int array;  (* ids of instantaneous activities *)
  acts : San.Activity.t array;
  mutable now : float;
  mutable events : int;
}

let sample_delay st (a : San.Activity.t) =
  match a.timing with
  | San.Activity.Instantaneous -> assert false
  | San.Activity.Timed { dist; _ } -> Dist.sample (dist st.marking) st.stream

let schedule st (a : San.Activity.t) =
  let delay = sample_delay st a in
  Event_heap.push st.heap ~time:(st.now +. delay) ~act:a.id
    ~version:st.versions.(a.id);
  st.scheduled.(a.id) <- true

let cancel st id =
  st.versions.(id) <- st.versions.(id) + 1;
  st.scheduled.(id) <- false

(* Re-evaluate one timed activity after a marking change it depends on. *)
let reevaluate st (a : San.Activity.t) =
  match a.timing with
  | San.Activity.Instantaneous -> ()
  | San.Activity.Timed { policy; _ } ->
      if a.enabled st.marking then begin
        if not st.scheduled.(a.id) then schedule st a
        else
          match policy with
          | San.Activity.Keep -> ()
          | San.Activity.Resample ->
              cancel st a.id;
              schedule st a
      end
      else if st.scheduled.(a.id) then cancel st a.id

let select_case st (a : San.Activity.t) =
  if Array.length a.cases = 1 then 0
  else begin
    let weights =
      Array.map (fun c -> c.San.Activity.case_weight st.marking) a.cases
    in
    Prng.Stream.categorical st.stream weights
  end

(* Fire [a] through case [c]; returns the list of changed place uids. *)
let fire st (a : San.Activity.t) case =
  San.Marking.clear_journal st.marking;
  let ctx = { San.Activity.time = st.now; stream = Some st.stream } in
  a.cases.(case).San.Activity.effect ctx st.marking;
  San.Marking.journal st.marking

(* Propagate a marking change: re-evaluate the fired activity and every
   activity that reads a changed place. *)
let propagate st (fired : San.Activity.t option) changed =
  let seen = Hashtbl.create 16 in
  (match fired with
  | Some a ->
      Hashtbl.replace seen a.San.Activity.id ();
      reevaluate st a
  | None -> ());
  List.iter
    (fun uid ->
      List.iter
        (fun (a : San.Activity.t) ->
          if not (Hashtbl.mem seen a.id) then begin
            Hashtbl.replace seen a.id ();
            reevaluate st a
          end)
        (San.Model.dependents st.model uid))
    changed

let enabled_instantaneous st =
  Array.fold_left
    (fun acc id ->
      let a = st.acts.(id) in
      if a.San.Activity.enabled st.marking then a :: acc else acc)
    [] st.inst_ids
  |> List.rev

(* Fire enabled instantaneous activities until none remain, choosing
   uniformly among the enabled set at each step.  [notify] is None during
   t = 0 setup (observers do not see setup firings). *)
let stabilize st ~notify =
  let steps = ref 0 in
  let rec loop () =
    match enabled_instantaneous st with
    | [] -> ()
    | enabled ->
        incr steps;
        if !steps > st.cfg.max_inst_chain then
          raise
            (Stabilization_diverged
               (Printf.sprintf
                  "more than %d consecutive instantaneous firings at t=%g"
                  st.cfg.max_inst_chain st.now));
        let a = Prng.Stream.choose_list st.stream enabled in
        let case = select_case st a in
        let changed = fire st a case in
        propagate st None changed;
        (match notify with
        | Some (observer : Observer.t) ->
            st.events <- st.events + 1;
            observer.on_fire st.now a case st.marking
        | None -> ());
        loop ()
  in
  loop ()

let run ~model ~config:cfg ~stream ~observer =
  let acts = San.Model.activities model in
  let n = Array.length acts in
  let inst_ids =
    Array.of_list
      (Array.to_list acts
      |> List.filter San.Activity.is_instantaneous
      |> List.map (fun (a : San.Activity.t) -> a.id))
  in
  let st =
    {
      model;
      cfg;
      stream;
      marking = San.Model.initial_marking model;
      heap = Event_heap.create ();
      versions = Array.make n 0;
      scheduled = Array.make n false;
      inst_ids;
      acts;
      now = 0.0;
      events = 0;
    }
  in
  (* t = 0 setup: stabilize instantaneous activities silently, then
     schedule every enabled timed activity that the stabilization's own
     propagation has not already scheduled (scheduling it twice would
     leave two live completions racing — a doubled rate). *)
  stabilize st ~notify:None;
  Array.iter
    (fun (a : San.Activity.t) ->
      if
        (not (San.Activity.is_instantaneous a))
        && (not st.scheduled.(a.id))
        && a.enabled st.marking
      then schedule st a)
    acts;
  observer.Observer.on_init 0.0 st.marking;
  let stopped = ref false in
  let check_stop () =
    match cfg.stop with
    | Some pred when pred st.marking -> stopped := true
    | Some _ | None -> ()
  in
  check_stop ();
  let finished = ref !stopped in
  let last_event_time = ref 0.0 in
  while not !finished do
    match Event_heap.pop st.heap with
    | None -> finished := true
    | Some entry ->
        if entry.Event_heap.version = st.versions.(entry.act) then begin
          if entry.time > cfg.horizon then begin
            (* Past the horizon: the popped completion is discarded; the
               marking holds through the end of the window. *)
            finished := true
          end
          else begin
            let a = st.acts.(entry.act) in
            if entry.time > st.now then
              observer.Observer.on_advance st.now entry.time st.marking;
            st.now <- entry.time;
            last_event_time := entry.time;
            st.scheduled.(a.id) <- false;
            st.versions.(a.id) <- st.versions.(a.id) + 1;
            let case = select_case st a in
            let changed = fire st a case in
            propagate st (Some a) changed;
            st.events <- st.events + 1;
            observer.Observer.on_fire st.now a case st.marking;
            check_stop ();
            if not !stopped then stabilize st ~notify:(Some observer);
            check_stop ();
            if !stopped then finished := true;
            if st.events >= cfg.max_events then finished := true
          end
        end
  done;
  if cfg.horizon > st.now then
    observer.Observer.on_advance st.now cfg.horizon st.marking;
  observer.Observer.on_finish cfg.horizon st.marking;
  {
    end_time = !last_event_time;
    events = st.events;
    stopped_early = !stopped;
    final = st.marking;
  }
