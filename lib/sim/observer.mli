(** Observation hooks into a simulation run.

    Observers are how reward variables, traces, and invariant checkers see
    a run. The executor guarantees the calling discipline:

    {ol
    {- [on_init t0 m] once, after initial instantaneous stabilization (the
       model's t = 0 setup firings are not reported individually);}
    {- then, in time order: [on_advance t0 t1 m] for every maximal interval
       [\[t0, t1)] with [t0 < t1] over which the marking [m] is constant,
       and [on_fire t act case m] for every timed or instantaneous firing,
       where [m] is the marking {e after} the effect;}
    {- finally [on_finish t_end m] once, at the horizon (the marking is
       advanced to the horizon even if the event list empties or a stop
       predicate halts the run early — an absorbed marking persists).}}

    Markings passed to observers are live views; observers must not
    mutate them.

    During [on_fire], {!San.Marking.journal} still lists exactly the
    places the reported firing changed (the executor clears the journal
    before applying the effect and reads — never writes — the marking
    until the observers have run). Delta-based observers such as
    {!Trajectory} rely on this contract to avoid scanning every place on
    every event. *)

type t = {
  on_init : float -> San.Marking.t -> unit;
  on_advance : float -> float -> San.Marking.t -> unit;
  on_fire : float -> San.Activity.t -> int -> San.Marking.t -> unit;
  on_finish : float -> San.Marking.t -> unit;
}

val nop : t
(** Does nothing on every hook; override fields with [{ nop with ... }]. *)

val combine : t list -> t
(** Calls each observer's hooks in list order. *)
