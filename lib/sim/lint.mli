(** Dynamic model linter.

    The executor wakes a timed activity up only when a place in its
    declared [reads] list changes, so an enabling predicate, firing-rate
    function, or case weight that consults an {e undeclared} place is a
    silent correctness bug: the activity can stay scheduled (or dormant)
    on stale information. This linter runs the model, samples visited
    markings, re-evaluates every activity's marking-dependent functions
    under read tracing ({!San.Marking.trace_reads}), and reports every
    undeclared place an activity was observed to read.

    The check is sound but not complete: it only sees the markings the
    sampled runs visit — like any dynamic analysis, a clean report is
    evidence, not proof. Run it in tests with a few seeds. *)

type violation = {
  activity : string;
  place : string;
  via : string;  (** which function read it: "enabled", "dist" or "weight" *)
}

val pp_violation : Format.formatter -> violation -> unit

val undeclared_reads :
  ?runs:int ->
  ?horizon:float ->
  ?max_markings:int ->
  ?seed:int64 ->
  San.Model.t ->
  violation list
(** [undeclared_reads model] simulates [runs] (default 3) replications to
    [horizon] (default 10.0), collects up to [max_markings] (default 500)
    distinct visited markings (including the initial one), and checks
    every activity against each. Violations are deduplicated. *)
