type spec = { name : string; kind : kind }

and kind =
  | Time_average of {
      f : San.Marking.t -> float;
      from_ : float;
      until : float;
    }
  | Integral of { f : San.Marking.t -> float; from_ : float; until : float }
  | Instant of { f : San.Marking.t -> float; at : float }
  | Ever of { pred : San.Marking.t -> bool; until : float }
  | First_passage of { pred : San.Marking.t -> bool }
  | Impulse of {
      f : San.Activity.t -> int -> San.Marking.t -> float;
      from_ : float;
      until : float;
    }
  | Final of { f : San.Marking.t -> float }
  | Custom of { make : unit -> Observer.t * (unit -> float); window : float }

let check_window ~name ~from_ ~until =
  if not (0.0 <= from_ && from_ < until) then
    invalid_arg
      (Printf.sprintf "Reward %S: window [%g, %g] invalid" name from_ until)

let time_average ~name ?(from_ = 0.0) ~until f =
  check_window ~name ~from_ ~until;
  { name; kind = Time_average { f; from_; until } }

let probability_in_interval ~name ?from_ ~until pred =
  time_average ~name ?from_ ~until (fun m -> if pred m then 1.0 else 0.0)

let instant ~name ~at f =
  if at < 0.0 then invalid_arg (Printf.sprintf "Reward %S: at < 0" name);
  { name; kind = Instant { f; at } }

let ever ~name ~until pred =
  if not (until > 0.0) then
    invalid_arg (Printf.sprintf "Reward %S: until must be > 0" name);
  { name; kind = Ever { pred; until } }

let first_passage ~name pred = { name; kind = First_passage { pred } }
let final ~name f = { name; kind = Final { f } }

let impulse ~name ?(from_ = 0.0) ~until f =
  check_window ~name ~from_ ~until;
  { name; kind = Impulse { f; from_; until } }

let custom ~name ~window make =
  if window < 0.0 then
    invalid_arg (Printf.sprintf "Reward %S: negative window" name);
  { name; kind = Custom { make; window } }

let latest_time spec =
  match spec.kind with
  | Time_average { until; _ } | Integral { until; _ } | Ever { until; _ }
  | Impulse { until; _ } ->
      until
  | Instant { at; _ } -> at
  | Custom { window; _ } -> window
  | First_passage _ | Final _ -> 0.0

type instance = { observer : Observer.t; value : unit -> float }

let instantiate spec =
  match spec.kind with
  | Time_average { f; from_; until } | Integral { f; from_; until } ->
      let acc = ref 0.0 in
      let weigh t0 t1 m =
        let lo = Float.max t0 from_ and hi = Float.min t1 until in
        if hi > lo then acc := !acc +. (f m *. (hi -. lo))
      in
      let normalize =
        match spec.kind with
        | Time_average _ -> until -. from_
        | _ -> 1.0
      in
      {
        observer = { Observer.nop with on_advance = weigh };
        value = (fun () -> !acc /. normalize);
      }
  | Instant { f; at } ->
      let result = ref nan in
      let captured = ref false in
      let capture_if t0 t1 m =
        if (not !captured) && t0 <= at && at < t1 then begin
          captured := true;
          result := f m
        end
      in
      let finish t m =
        if (not !captured) && at <= t then begin
          captured := true;
          result := f m
        end
      in
      {
        observer =
          { Observer.nop with on_advance = capture_if; on_finish = finish };
        value = (fun () -> !result);
      }
  | Ever { pred; until } ->
      let hit = ref false in
      let check t m = if (not !hit) && t <= until && pred m then hit := true in
      {
        observer =
          {
            Observer.nop with
            on_init = check;
            on_fire = (fun t _ _ m -> check t m);
          };
        value = (fun () -> if !hit then 1.0 else 0.0);
      }
  | First_passage { pred } ->
      let at = ref nan in
      let check t m = if Float.is_nan !at && pred m then at := t in
      {
        observer =
          {
            Observer.nop with
            on_init = check;
            on_fire = (fun t _ _ m -> check t m);
          };
        value = (fun () -> !at);
      }
  | Impulse { f; from_; until } ->
      let acc = ref 0.0 in
      let earn t a case m =
        if from_ <= t && t <= until then acc := !acc +. f a case m
      in
      {
        observer = { Observer.nop with on_fire = earn };
        value = (fun () -> !acc);
      }
  | Final { f } ->
      let result = ref nan in
      {
        observer =
          { Observer.nop with on_finish = (fun _ m -> result := f m) };
        value = (fun () -> !result);
      }
  | Custom { make; window = _ } ->
      let observer, value = make () in
      { observer; value }

let observer inst = inst.observer
let value inst = inst.value ()
