type t = {
  names : string array;
  firings : int array;
  cancellations : int array;
  resamples : int array;
  mutable runs : int;
  mutable events : int;
  mutable setup_events : int;
  mutable chains : int;
  mutable chain_steps : int;
  mutable max_chain : int;
  mutable pops : int;
  mutable stale_pops : int;
  mutable depth_sum : int;
  mutable max_depth : int;
  mutable wall_seconds : float;
  run_events : int array;
  mutable min_run_events : int;
  mutable max_run_events : int;
}

(* Base-2 log buckets of the per-run event count, sized to match the
   registry's histogram layout (observe_raw clamps anyway). *)
let hist_buckets = 63

let bucket_of_int v =
  if v <= 1 then 0
  else begin
    let i = ref 0 in
    let bound = ref 1 in
    while !bound < v && !i < hist_buckets - 1 do
      incr i;
      bound := !bound * 2
    done;
    !i
  end

let create ~model =
  let acts = San.Model.activities model in
  let n = Array.length acts in
  {
    names = Array.map (fun (a : San.Activity.t) -> a.name) acts;
    firings = Array.make n 0;
    cancellations = Array.make n 0;
    resamples = Array.make n 0;
    runs = 0;
    events = 0;
    setup_events = 0;
    chains = 0;
    chain_steps = 0;
    max_chain = 0;
    pops = 0;
    stale_pops = 0;
    depth_sum = 0;
    max_depth = 0;
    wall_seconds = 0.0;
    run_events = Array.make hist_buckets 0;
    min_run_events = max_int;
    max_run_events = 0;
  }

let reset m =
  Array.fill m.firings 0 (Array.length m.firings) 0;
  Array.fill m.cancellations 0 (Array.length m.cancellations) 0;
  Array.fill m.resamples 0 (Array.length m.resamples) 0;
  m.runs <- 0;
  m.events <- 0;
  m.setup_events <- 0;
  m.chains <- 0;
  m.chain_steps <- 0;
  m.max_chain <- 0;
  m.pops <- 0;
  m.stale_pops <- 0;
  m.depth_sum <- 0;
  m.max_depth <- 0;
  m.wall_seconds <- 0.0;
  Array.fill m.run_events 0 hist_buckets 0;
  m.min_run_events <- max_int;
  m.max_run_events <- 0

let add_arrays dst src =
  Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src

let merge ~into src =
  if Array.length into.names <> Array.length src.names then
    invalid_arg "Metrics.merge: sinks come from different models";
  add_arrays into.firings src.firings;
  add_arrays into.cancellations src.cancellations;
  add_arrays into.resamples src.resamples;
  into.runs <- into.runs + src.runs;
  into.events <- into.events + src.events;
  into.setup_events <- into.setup_events + src.setup_events;
  into.chains <- into.chains + src.chains;
  into.chain_steps <- into.chain_steps + src.chain_steps;
  into.max_chain <- Int.max into.max_chain src.max_chain;
  into.pops <- into.pops + src.pops;
  into.stale_pops <- into.stale_pops + src.stale_pops;
  into.depth_sum <- into.depth_sum + src.depth_sum;
  into.max_depth <- Int.max into.max_depth src.max_depth;
  into.wall_seconds <- into.wall_seconds +. src.wall_seconds;
  add_arrays into.run_events src.run_events;
  into.min_run_events <- Int.min into.min_run_events src.min_run_events;
  into.max_run_events <- Int.max into.max_run_events src.max_run_events

let add_wall m s = m.wall_seconds <- m.wall_seconds +. s

let record_run m ~firings ~cancellations ~resamples ~events ~setup_events
    ~chains ~chain_steps ~max_chain ~pops ~stale_pops ~depth_sum ~max_depth =
  add_arrays m.firings firings;
  add_arrays m.cancellations cancellations;
  add_arrays m.resamples resamples;
  m.runs <- m.runs + 1;
  m.events <- m.events + events;
  m.setup_events <- m.setup_events + setup_events;
  m.chains <- m.chains + chains;
  m.chain_steps <- m.chain_steps + chain_steps;
  m.max_chain <- Int.max m.max_chain max_chain;
  m.pops <- m.pops + pops;
  m.stale_pops <- m.stale_pops + stale_pops;
  m.depth_sum <- m.depth_sum + depth_sum;
  m.max_depth <- Int.max m.max_depth max_depth;
  let b = bucket_of_int events in
  m.run_events.(b) <- m.run_events.(b) + 1;
  m.min_run_events <- Int.min m.min_run_events events;
  m.max_run_events <- Int.max m.max_run_events events

let ratio num den = if den = 0 then nan else float_of_int num /. float_of_int den

(* Below a microsecond of recorded wall time the quotient is timer
   noise, not a throughput: report undefined (nan), which every snapshot
   writer renders as null, rather than inf or a garbage figure. *)
let min_wall_seconds = 1e-6

let events_per_sec m =
  if m.wall_seconds >= min_wall_seconds then
    float_of_int m.events /. m.wall_seconds
  else nan

let mean_chain_length m = ratio m.chain_steps m.chains
let mean_heap_depth m = ratio m.depth_sum m.pops
let stale_fraction m = ratio m.stale_pops m.pops

let never_fired m =
  let out = ref [] in
  for i = Array.length m.firings - 1 downto 0 do
    if m.firings.(i) = 0 then out := m.names.(i) :: !out
  done;
  !out

let csv_header = [ "activity"; "firings"; "cancellations"; "resamples" ]

let csv_rows m =
  Array.to_list
    (Array.mapi
       (fun i name ->
         [
           name;
           string_of_int m.firings.(i);
           string_of_int m.cancellations.(i);
           string_of_int m.resamples.(i);
         ])
       m.names)

let pp_summary ppf m =
  Format.fprintf ppf "runs                    %d@." m.runs;
  Format.fprintf ppf "events                  %d (+%d setup)@." m.events
    m.setup_events;
  (if m.wall_seconds > 0.0 then
     Format.fprintf ppf "throughput              %.3g events/sec over %.2fs@."
       (events_per_sec m) m.wall_seconds);
  Format.fprintf ppf "heap pops               %d (%.1f%% stale)@." m.pops
    (100.0 *. if m.pops = 0 then 0.0 else stale_fraction m);
  Format.fprintf ppf "heap depth              mean %.1f, max %d@."
    (if m.pops = 0 then 0.0 else mean_heap_depth m)
    m.max_depth;
  Format.fprintf ppf "stabilization chains    %d (mean %.1f steps, max %d)@."
    m.chains
    (if m.chains = 0 then 0.0 else mean_chain_length m)
    m.max_chain

let pp_activities ?limit ppf m =
  let idx = Array.init (Array.length m.names) Fun.id in
  Array.sort
    (fun i j ->
      match Int.compare m.firings.(j) m.firings.(i) with
      | 0 -> Int.compare i j
      | c -> c)
    idx;
  let fired = Array.to_list idx |> List.filter (fun i -> m.firings.(i) > 0) in
  let shown =
    match limit with
    | Some k when k < List.length fired -> List.filteri (fun n _ -> n < k) fired
    | Some _ | None -> fired
  in
  let width =
    List.fold_left (fun w i -> Int.max w (String.length m.names.(i))) 8 shown
  in
  Format.fprintf ppf "%-*s %10s %13s %10s@." width "activity" "firings"
    "cancellations" "resamples";
  List.iter
    (fun i ->
      Format.fprintf ppf "%-*s %10d %13d %10d@." width m.names.(i)
        m.firings.(i) m.cancellations.(i) m.resamples.(i))
    shown;
  let hidden = List.length fired - List.length shown in
  if hidden > 0 then
    Format.fprintf ppf "  ... and %d more firing activities@." hidden;
  match never_fired m with
  | [] -> ()
  | quiet ->
      let n = List.length quiet in
      let sample = List.filteri (fun i _ -> i < 8) quiet in
      Format.fprintf ppf "%d activities never fired: %s%s@." n
        (String.concat " " sample)
        (if n > List.length sample then " ..." else "")

(* Registry export: deterministic engine counters into the "engine"
   scope, per-activity counters into "activity", and wall-derived
   figures as volatile gauges (excluded from the deterministic core of
   a snapshot). Idempotent targets: exporting two sinks into the same
   registry adds them, matching [merge]. *)
let export m ~into =
  let module R = Obs.Registry in
  let e = R.scope into "engine" in
  R.add (R.counter e "runs") m.runs;
  R.add (R.counter e "events") m.events;
  R.add (R.counter e "setup_events") m.setup_events;
  R.add (R.counter e "chains") m.chains;
  R.add (R.counter e "chain_steps") m.chain_steps;
  R.add (R.counter e "heap_pops") m.pops;
  R.add (R.counter e "heap_stale_pops") m.stale_pops;
  R.add (R.counter e "heap_depth_sum") m.depth_sum;
  R.set (R.gauge e "max_chain") (float_of_int m.max_chain);
  R.set (R.gauge e "max_heap_depth") (float_of_int m.max_depth);
  R.observe_raw
    (R.histogram e "events_per_run")
    ~counts:m.run_events ~n:m.runs
    ~sum:(float_of_int m.events)
    ~min_:(float_of_int m.min_run_events)
    ~max_:(float_of_int m.max_run_events);
  R.set (R.gauge ~volatile:true ~merge:`Sum e "wall_seconds") m.wall_seconds;
  R.set (R.gauge ~volatile:true e "events_per_sec") (events_per_sec m);
  let a = R.scope into "activity" in
  Array.iteri
    (fun i name ->
      R.add (R.counter a (name ^ ".firings")) m.firings.(i);
      R.add (R.counter a (name ^ ".cancellations")) m.cancellations.(i);
      R.add (R.counter a (name ^ ".resamples")) m.resamples.(i))
    m.names
