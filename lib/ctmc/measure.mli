(** Reward evaluation on a solved CTMC — the analytical counterparts of
    the simulator's {!Sim.Reward} estimators, used for cross-validation
    and for exact solution of small models. *)

val instant : Explore.t -> at:float -> (San.Marking.t -> float) -> float
(** E[f(state at time [at])]. *)

val interval_average :
  Explore.t -> ?from_:float -> until:float -> (San.Marking.t -> float) ->
  float
(** (1/(until-from)) · E[∫ f dt] over the window — e.g. unavailability
    with an indicator [f]. *)

val ever :
  Explore.t -> until:float -> (San.Marking.t -> bool) -> float
(** P(the predicate holds at some instant in [\[0, until\]]), computed by
    making predicate states absorbing and taking the transient mass in
    them at [until] — exact unreliability. *)

val steady_average : Explore.t -> (San.Marking.t -> float) -> float
(** Long-run expectation of [f] under {!Steady.distribution}. *)
