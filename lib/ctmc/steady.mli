(** Long-run (steady-state) solution of a CTMC.

    Power iteration on the uniformized DTMC. For an irreducible chain this
    converges to the stationary distribution; for an absorbing chain it
    converges to the long-run absorption distribution (from the initial
    distribution), which is the relevant notion for the ITUA model, whose
    exclusion dynamics are absorbing. *)

val distribution :
  ?tol:float -> ?max_iter:int -> Explore.t -> float array
(** [distribution c] iterates until the L1 change per step falls below
    [tol] (default 1e-12) or [max_iter] (default 1_000_000) steps.
    Raises [Failure] if not converged. *)
