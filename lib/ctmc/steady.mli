(** Long-run (steady-state) solution of a CTMC.

    Power iteration on the uniformized DTMC. For an irreducible chain this
    converges to the stationary distribution; for an absorbing chain it
    converges to the long-run absorption distribution (from the initial
    distribution), which is the relevant notion for the ITUA model, whose
    exclusion dynamics are absorbing. *)

val distribution :
  ?tol:float ->
  ?max_iter:int ->
  ?obs:Obs.Registry.t ->
  ?convergence:Obs.Convergence.t ->
  ?profile:Obs.Profile.t ->
  Explore.t ->
  float array
(** [distribution c] iterates until the L1 change per step falls below
    [tol] (default 1e-12) or [max_iter] (default 1_000_000) steps.
    Raises [Failure] if not converged.

    [obs] receives the iteration count, uniformization rate and final
    residual in scope ["ctmc"]; [convergence] receives the L1-delta
    trajectory (measure ["ctmc_steady_delta"], one point per
    power-of-two iteration plus the final one); [profile] attributes
    the whole solve to the [Ctmc_solve] phase. *)
