(* Power iteration on the uniformized DTMC, with optional telemetry:
   the whole solve is one [Ctmc_solve] profiler phase, the iteration
   count and final residual land in the registry's "ctmc" scope, and
   the L1-delta trajectory (sampled at power-of-two iterations plus the
   final one) goes to the convergence recorder — the solver's analogue
   of a CI-half-width-vs-reps curve. *)
let in_solve profile f =
  match profile with
  | None -> f ()
  | Some p -> Obs.Profile.span p Obs.Profile.Ctmc_solve f

let distribution ?(tol = 1e-12) ?(max_iter = 1_000_000) ?obs ?convergence
    ?profile c =
  in_solve profile @@ fun () ->
  let lambda = Float.max (Explore.max_exit_rate c) 1e-9 *. 1.05 in
  let n = Explore.n_states c in
  let v = ref (Array.make n 0.0) in
  List.iter (fun (i, p) -> !v.(i) <- !v.(i) +. p) (Explore.initial_dist c);
  let delta = ref infinity in
  let iter = ref 0 in
  let record_delta () =
    match convergence with
    | None -> ()
    | Some conv ->
        Obs.Convergence.record conv ~measure:"ctmc_steady_delta" ~n:!iter
          ~value:!delta
  in
  while !delta > tol && !iter < max_iter do
    incr iter;
    let w = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let vi = !v.(i) in
      if vi <> 0.0 then begin
        let out = Explore.exit_rate c i in
        w.(i) <- w.(i) +. (vi *. (1.0 -. (out /. lambda)));
        List.iter
          (fun (j, r) -> w.(j) <- w.(j) +. (vi *. r /. lambda))
          (Explore.transitions c i)
      end
    done;
    let d = ref 0.0 in
    for i = 0 to n - 1 do
      d := !d +. Float.abs (w.(i) -. !v.(i))
    done;
    delta := !d;
    v := w;
    if !iter land (!iter - 1) = 0 then record_delta ()
  done;
  (* The loop records powers of two; the stopping iteration is usually
     not one, so close the trajectory with the final residual. *)
  if !iter > 0 && !iter land (!iter - 1) <> 0 then record_delta ();
  (match obs with
  | None -> ()
  | Some reg ->
      let module R = Obs.Registry in
      let s = R.scope reg "ctmc" in
      R.add (R.counter s "steady_iterations") !iter;
      R.set (R.gauge s "steady_lambda") lambda;
      R.set (R.gauge s "steady_delta") !delta);
  if !delta > tol then
    failwith
      (Printf.sprintf "Ctmc.Steady: no convergence after %d iterations \
                       (delta %g)" max_iter !delta);
  !v
