let distribution ?(tol = 1e-12) ?(max_iter = 1_000_000) c =
  let lambda = Float.max (Explore.max_exit_rate c) 1e-9 *. 1.05 in
  let n = Explore.n_states c in
  let v = ref (Array.make n 0.0) in
  List.iter (fun (i, p) -> !v.(i) <- !v.(i) +. p) (Explore.initial_dist c);
  let delta = ref infinity in
  let iter = ref 0 in
  while !delta > tol && !iter < max_iter do
    incr iter;
    let w = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let vi = !v.(i) in
      if vi <> 0.0 then begin
        let out = Explore.exit_rate c i in
        w.(i) <- w.(i) +. (vi *. (1.0 -. (out /. lambda)));
        List.iter
          (fun (j, r) -> w.(j) <- w.(j) +. (vi *. r /. lambda))
          (Explore.transitions c i)
      end
    done;
    let d = ref 0.0 in
    for i = 0 to n - 1 do
      d := !d +. Float.abs (w.(i) -. !v.(i))
    done;
    delta := !d;
    v := w
  done;
  if !delta > tol then
    failwith
      (Printf.sprintf "Ctmc.Steady: no convergence after %d iterations \
                       (delta %g)" max_iter !delta);
  !v
