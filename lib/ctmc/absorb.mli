(** Absorption analysis of a CTMC: mean time to absorption and absorption
    probabilities, by Gauss–Seidel solution of the first-step equations.

    A state is {e absorbing} when it has no outgoing transitions (exit
    rate 0). These measures complement {!Transient}: the ITUA model's
    exclusion dynamics are absorbing, so "how long until the system is
    fully degraded" is a mean-time-to-absorption question. *)

val absorbing_states : Explore.t -> int list

val mean_time_to_absorption :
  ?tol:float -> ?max_iter:int -> Explore.t -> float
(** Expected time until an absorbing state is reached, from the initial
    distribution. Raises [Failure] if the chain has no absorbing state
    reachable with probability 1 (detected as non-convergence) or if the
    iteration does not converge within [max_iter] (default 1_000_000)
    sweeps at tolerance [tol] (default 1e-12). *)

val absorption_probabilities :
  ?tol:float -> ?max_iter:int -> Explore.t -> target:(int -> bool) ->
  float
(** Probability that the chain is eventually absorbed in a state
    satisfying [target], from the initial distribution. *)
