exception Non_markovian of string
exception Vanishing_loop of string
exception Too_many_states of int

type key = int array * float array

type t = {
  model : San.Model.t;
  states : key array;
  initial_dist : (int * float) list;
  transitions : (int * float) list array;
  exit_rates : float array;
}

let ctx = { San.Activity.time = 0.0; stream = None }

let key_of_marking m = (San.Marking.int_snapshot m, San.Marking.float_snapshot m)

let restore model ((ints, floats) : key) =
  let m = San.Model.initial_marking model in
  Array.iteri (fun i p -> San.Marking.set m p ints.(i)) (San.Model.places model);
  Array.iteri
    (fun i p -> San.Marking.fset m p floats.(i))
    (San.Model.float_places model);
  San.Marking.clear_journal m;
  m

let enabled_instantaneous model m =
  Array.fold_left
    (fun acc (a : San.Activity.t) ->
      if San.Activity.is_instantaneous a && a.enabled m then a :: acc else acc)
    []
    (San.Model.activities model)
  |> List.rev

let normalized_weights (a : San.Activity.t) m =
  let w = Array.map (fun c -> c.San.Activity.case_weight m) a.cases in
  let total = Array.fold_left ( +. ) 0.0 w in
  if not (total > 0.0) then
    raise
      (Non_markovian
         (Printf.sprintf "activity %s: case weights sum to %g" a.name total));
  Array.map (fun x -> x /. total) w

(* Resolve a marking into its stable-marking distribution by eliminating
   chains of instantaneous firings: uniform choice among the enabled
   instantaneous activities, case probabilities within each.  A cycle of
   vanishing markings shows up as unbounded recursion depth. *)
let resolve_vanishing model m0 =
  let acc = Hashtbl.create 8 in
  let max_depth = 10_000 in
  let rec go m prob depth =
    if depth > max_depth then
      raise
        (Vanishing_loop
           "instantaneous activities did not stabilize (cycle suspected)");
    match enabled_instantaneous model m with
    | [] ->
        let k = key_of_marking m in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc k) in
        Hashtbl.replace acc k (prev +. prob)
    | enabled ->
        let p_act = prob /. float_of_int (List.length enabled) in
        List.iter
          (fun (a : San.Activity.t) ->
            let weights = normalized_weights a m in
            Array.iteri
              (fun case w ->
                if w > 0.0 then begin
                  let m' = San.Marking.copy m in
                  a.cases.(case).San.Activity.effect ctx m';
                  go m' (p_act *. w) (depth + 1)
                end)
              weights
          )
          enabled
  in
  go m0 1.0 0;
  Hashtbl.fold (fun k p l -> (k, p) :: l) acc []

(* Growable array of state keys. *)
module Pool = struct
  type nonrec t = {
    mutable arr : key array;
    mutable size : int;
    index : (key, int) Hashtbl.t;
  }

  let dummy_key : key = ([||], [||])

  let create () =
    { arr = Array.make 256 dummy_key; size = 0; index = Hashtbl.create 1024 }

  (* Returns (id, freshly created?). *)
  let intern p ~max_states k =
    match Hashtbl.find_opt p.index k with
    | Some i -> (i, false)
    | None ->
        if p.size >= max_states then raise (Too_many_states max_states);
        if p.size = Array.length p.arr then begin
          let arr = Array.make (2 * p.size) dummy_key in
          Array.blit p.arr 0 arr 0 p.size;
          p.arr <- arr
        end;
        let i = p.size in
        p.arr.(i) <- k;
        p.size <- p.size + 1;
        Hashtbl.add p.index k i;
        (i, true)
end

let explore ?(max_states = 200_000) model =
  let pool = Pool.create () in
  let frontier = Queue.create () in
  let intern k =
    let i, fresh = Pool.intern pool ~max_states k in
    if fresh then Queue.add i frontier;
    i
  in
  let initial_dist =
    resolve_vanishing model (San.Model.initial_marking model)
    |> List.map (fun (k, p) -> (intern k, p))
  in
  let transitions = ref [] (* (source, target, rate), reversed *) in
  while not (Queue.is_empty frontier) do
    let i = Queue.pop frontier in
    let m = restore model pool.Pool.arr.(i) in
    Array.iter
      (fun (a : San.Activity.t) ->
        match a.San.Activity.timing with
        | San.Activity.Instantaneous -> ()
        | San.Activity.Timed { dist; _ } ->
            if a.enabled m then begin
              let rate =
                match Dist.rate_of_exponential (dist m) with
                | Some r -> r
                | None ->
                    raise
                      (Non_markovian
                         (Printf.sprintf
                            "activity %s has non-exponential distribution %s"
                            a.name
                            (Format.asprintf "%a" Dist.pp (dist m))))
              in
              if rate > 0.0 then begin
                let weights = normalized_weights a m in
                Array.iteri
                  (fun case w ->
                    if w > 0.0 then begin
                      let m' = San.Marking.copy m in
                      a.cases.(case).San.Activity.effect ctx m';
                      List.iter
                        (fun (k, p) ->
                          let j = intern k in
                          if j <> i then
                            transitions :=
                              (i, j, rate *. w *. p) :: !transitions)
                        (resolve_vanishing model m')
                    end)
                  weights
              end
            end)
      (San.Model.activities model)
  done;
  let n = pool.Pool.size in
  let merged = Array.make n [] in
  (* Merge parallel transitions (same source and target). *)
  let per_source = Array.make n [] in
  List.iter
    (fun (i, j, r) -> per_source.(i) <- (j, r) :: per_source.(i))
    !transitions;
  for i = 0 to n - 1 do
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (j, r) ->
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl j) in
        Hashtbl.replace tbl j (prev +. r))
      per_source.(i);
    merged.(i) <-
      Hashtbl.fold (fun j r acc -> (j, r) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  done;
  let exit_rates =
    Array.map (List.fold_left (fun acc (_, r) -> acc +. r) 0.0) merged
  in
  {
    model;
    states = Array.sub pool.Pool.arr 0 n;
    initial_dist;
    transitions = merged;
    exit_rates;
  }

let n_states c = Array.length c.states
let initial_dist c = c.initial_dist
let transitions c i = c.transitions.(i)
let exit_rate c i = c.exit_rates.(i)
let marking c i = restore c.model c.states.(i)

let eval c f = Array.init (n_states c) (fun i -> f (marking c i))

let max_exit_rate c = Array.fold_left Float.max 0.0 c.exit_rates

let make_absorbing c is_absorbing =
  {
    c with
    transitions =
      Array.mapi
        (fun i ts -> if is_absorbing i then [] else ts)
        c.transitions;
    exit_rates =
      Array.mapi
        (fun i r -> if is_absorbing i then 0.0 else r)
        c.exit_rates;
  }
