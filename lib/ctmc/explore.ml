exception Non_markovian of string
exception Unsound_canon of string
exception Vanishing_loop = Walker.Vanishing_loop
exception Too_many_states = Walker.Too_many_states

type key = Walker.key

type t = {
  model : San.Model.t;
  states : key array;
  initial_dist : (int * float) list;
  transitions : (int * float) list array;
  exit_rates : float array;
}

let restore = Walker.restore

(* The analytical pipeline treats a weight bug as a modeling error, not a
   prunable successor like the checker does. *)
let normalized_weights a m =
  try Walker.normalized_weights a m
  with Walker.Bad_weights msg -> raise (Non_markovian msg)

let resolve_vanishing model m =
  try Walker.resolve_vanishing model m
  with Walker.Bad_weights msg -> raise (Non_markovian msg)

(* One-step expansion of a stable marking: [emit] receives every stable
   successor key (pre-canon) with its rate contribution. Factored out of
   the frontier loop so the canon audit below can expand a state without
   interning anything. *)
let expand model m emit =
  Array.iter
    (fun (a : San.Activity.t) ->
      match a.San.Activity.timing with
      | San.Activity.Instantaneous -> ()
      | San.Activity.Timed { dist; _ } ->
          if a.enabled m then begin
            let rate =
              match Dist.rate_of_exponential (dist m) with
              | Some r -> r
              | None ->
                  raise
                    (Non_markovian
                       (Printf.sprintf
                          "activity %s has non-exponential distribution %s"
                          a.name
                          (Format.asprintf "%a" Dist.pp (dist m))))
            in
            if rate > 0.0 then begin
              let weights = normalized_weights a m in
              Array.iteri
                (fun case w ->
                  if w > 0.0 then
                    Walker.case_outcomes a case (San.Marking.copy m)
                    |> List.iter (fun (wo, m') ->
                           List.iter
                             (fun (k, p) -> emit k (rate *. w *. wo *. p))
                             (resolve_vanishing model m')))
                weights
            end
          end)
    (San.Model.activities model)

let explore ?(max_states = 200_000) ?(canon = fun k -> k) ?(audit = false)
    ?obs ?profile model =
  (match profile with
  | None -> ()
  | Some p -> Obs.Profile.enter p Obs.Profile.Ctmc_explore);
  let pool = Walker.Pool.create () in
  let frontier = Queue.create () in
  (* Lumpability audit: a sound canon maps a state and its representative
     to identical one-step behaviour over canonical classes. Checked on
     every distinct pre-canon key whose representative differs. *)
  let successors_by_class m =
    let tbl = Hashtbl.create 16 in
    expand model m (fun k r ->
        let c = canon k in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl c) in
        Hashtbl.replace tbl c (prev +. r));
    tbl
  in
  let audited = Hashtbl.create 256 in
  let audit_key k ck =
    if not (Hashtbl.mem audited k) then begin
      Hashtbl.add audited k ();
      if canon ck <> ck then
        raise
          (Unsound_canon
             "canon is not idempotent on a reachable state's representative");
      let s1 = successors_by_class (restore model k) in
      let s2 = successors_by_class (restore model ck) in
      (* Transitions staying inside the source's class are self-loops of
         the quotient on both sides; ignore them like the builder does. *)
      Hashtbl.remove s1 ck;
      Hashtbl.remove s2 ck;
      let check a b =
        Hashtbl.iter
          (fun c r ->
            let r' = Option.value ~default:0.0 (Hashtbl.find_opt b c) in
            let tol = 1e-9 *. Float.max 1.0 (Float.max (abs_float r) (abs_float r')) in
            if abs_float (r -. r') > tol then
              raise
                (Unsound_canon
                   (Printf.sprintf
                      "canon merges states with different one-step behaviour: rate to a canonical class differs (%.17g vs %.17g)"
                      r r')))
          a
      in
      check s1 s2;
      check s2 s1
    end
  in
  let intern k =
    let ck = canon k in
    if audit && ck <> k then audit_key k ck;
    let i, fresh = Walker.Pool.intern pool ~max_states ck in
    if fresh then Queue.add i frontier;
    i
  in
  let initial_dist =
    resolve_vanishing model (San.Model.initial_marking model)
    |> List.map (fun (k, p) -> (intern k, p))
  in
  let transitions = ref [] (* (source, target, rate), reversed *) in
  while not (Queue.is_empty frontier) do
    let i = Queue.pop frontier in
    let m = restore model (Walker.Pool.get pool i) in
    expand model m (fun k r ->
        let j = intern k in
        if j <> i then transitions := (i, j, r) :: !transitions)
  done;
  let n = Walker.Pool.size pool in
  let merged = Array.make n [] in
  (* Merge parallel transitions (same source and target). *)
  let per_source = Array.make n [] in
  List.iter
    (fun (i, j, r) -> per_source.(i) <- (j, r) :: per_source.(i))
    !transitions;
  for i = 0 to n - 1 do
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (j, r) ->
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl j) in
        Hashtbl.replace tbl j (prev +. r))
      per_source.(i);
    merged.(i) <-
      Hashtbl.fold (fun j r acc -> (j, r) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  done;
  let exit_rates =
    Array.map (List.fold_left (fun acc (_, r) -> acc +. r) 0.0) merged
  in
  (match obs with
  | None -> ()
  | Some reg ->
      let module R = Obs.Registry in
      let s = R.scope reg "ctmc" in
      R.add (R.counter s "explore_states") n;
      R.add
        (R.counter s "explore_transitions")
        (Array.fold_left (fun acc ts -> acc + List.length ts) 0 merged));
  (match profile with None -> () | Some p -> Obs.Profile.leave p);
  {
    model;
    states = Array.init n (Walker.Pool.get pool);
    initial_dist;
    transitions = merged;
    exit_rates;
  }

let n_states c = Array.length c.states
let initial_dist c = c.initial_dist
let transitions c i = c.transitions.(i)
let exit_rate c i = c.exit_rates.(i)
let marking c i = restore c.model c.states.(i)

let eval c f = Array.init (n_states c) (fun i -> f (marking c i))

let max_exit_rate c = Array.fold_left Float.max 0.0 c.exit_rates

let make_absorbing c is_absorbing =
  {
    c with
    transitions =
      Array.mapi
        (fun i ts -> if is_absorbing i then [] else ts)
        c.transitions;
    exit_rates =
      Array.mapi
        (fun i r -> if is_absorbing i then 0.0 else r)
        c.exit_rates;
  }
