exception Non_markovian of string
exception Vanishing_loop = Walker.Vanishing_loop
exception Too_many_states = Walker.Too_many_states

type key = Walker.key

type t = {
  model : San.Model.t;
  states : key array;
  initial_dist : (int * float) list;
  transitions : (int * float) list array;
  exit_rates : float array;
}

let restore = Walker.restore

(* The analytical pipeline treats a weight bug as a modeling error, not a
   prunable successor like the checker does. *)
let normalized_weights a m =
  try Walker.normalized_weights a m
  with Walker.Bad_weights msg -> raise (Non_markovian msg)

let resolve_vanishing model m =
  try Walker.resolve_vanishing model m
  with Walker.Bad_weights msg -> raise (Non_markovian msg)

let explore ?(max_states = 200_000) ?(canon = fun k -> k) ?obs ?profile model
    =
  (match profile with
  | None -> ()
  | Some p -> Obs.Profile.enter p Obs.Profile.Ctmc_explore);
  let pool = Walker.Pool.create () in
  let frontier = Queue.create () in
  let intern k =
    let i, fresh = Walker.Pool.intern pool ~max_states (canon k) in
    if fresh then Queue.add i frontier;
    i
  in
  let initial_dist =
    resolve_vanishing model (San.Model.initial_marking model)
    |> List.map (fun (k, p) -> (intern k, p))
  in
  let transitions = ref [] (* (source, target, rate), reversed *) in
  while not (Queue.is_empty frontier) do
    let i = Queue.pop frontier in
    let m = restore model (Walker.Pool.get pool i) in
    Array.iter
      (fun (a : San.Activity.t) ->
        match a.San.Activity.timing with
        | San.Activity.Instantaneous -> ()
        | San.Activity.Timed { dist; _ } ->
            if a.enabled m then begin
              let rate =
                match Dist.rate_of_exponential (dist m) with
                | Some r -> r
                | None ->
                    raise
                      (Non_markovian
                         (Printf.sprintf
                            "activity %s has non-exponential distribution %s"
                            a.name
                            (Format.asprintf "%a" Dist.pp (dist m))))
              in
              if rate > 0.0 then begin
                let weights = normalized_weights a m in
                Array.iteri
                  (fun case w ->
                    if w > 0.0 then
                      Walker.case_outcomes a case (San.Marking.copy m)
                      |> List.iter (fun (wo, m') ->
                             List.iter
                               (fun (k, p) ->
                                 let j = intern k in
                                 if j <> i then
                                   transitions :=
                                     (i, j, rate *. w *. wo *. p)
                                     :: !transitions)
                               (resolve_vanishing model m')))
                  weights
              end
            end)
      (San.Model.activities model)
  done;
  let n = Walker.Pool.size pool in
  let merged = Array.make n [] in
  (* Merge parallel transitions (same source and target). *)
  let per_source = Array.make n [] in
  List.iter
    (fun (i, j, r) -> per_source.(i) <- (j, r) :: per_source.(i))
    !transitions;
  for i = 0 to n - 1 do
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (j, r) ->
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl j) in
        Hashtbl.replace tbl j (prev +. r))
      per_source.(i);
    merged.(i) <-
      Hashtbl.fold (fun j r acc -> (j, r) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  done;
  let exit_rates =
    Array.map (List.fold_left (fun acc (_, r) -> acc +. r) 0.0) merged
  in
  (match obs with
  | None -> ()
  | Some reg ->
      let module R = Obs.Registry in
      let s = R.scope reg "ctmc" in
      R.add (R.counter s "explore_states") n;
      R.add
        (R.counter s "explore_transitions")
        (Array.fold_left (fun acc ts -> acc + List.length ts) 0 merged));
  (match profile with None -> () | Some p -> Obs.Profile.leave p);
  {
    model;
    states = Array.init n (Walker.Pool.get pool);
    initial_dist;
    transitions = merged;
    exit_rates;
  }

let n_states c = Array.length c.states
let initial_dist c = c.initial_dist
let transitions c i = c.transitions.(i)
let exit_rate c i = c.exit_rates.(i)
let marking c i = restore c.model c.states.(i)

let eval c f = Array.init (n_states c) (fun i -> f (marking c i))

let max_exit_rate c = Array.fold_left Float.max 0.0 c.exit_rates

let make_absorbing c is_absorbing =
  {
    c with
    transitions =
      Array.mapi
        (fun i ts -> if is_absorbing i then [] else ts)
        c.transitions;
    exit_rates =
      Array.mapi
        (fun i r -> if is_absorbing i then 0.0 else r)
        c.exit_rates;
  }
