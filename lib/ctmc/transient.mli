(** Transient solution of a CTMC by uniformization (Jensen's method).

    The chain is uniformized at rate Λ ≥ max exit rate into a DTMC
    P = I + Q/Λ, and π(t) = Σ_k pois(Λt, k) · π₀Pᵏ with the Poisson
    weights computed in log space (stable for large Λt) and truncated at a
    configurable mass tolerance.

    Both solvers optionally report telemetry: [obs] receives the
    uniformization rate and the truncated Poisson support size (the
    number of DTMC steps taken) in scope ["ctmc"], and [profile]
    attributes the whole solve to the [Ctmc_solve] phase. *)

val probabilities :
  ?epsilon:float ->
  ?obs:Obs.Registry.t ->
  ?profile:Obs.Profile.t ->
  Explore.t ->
  t:float ->
  float array
(** [probabilities c ~t] is the state-probability vector at time [t].
    [epsilon] (default 1e-12) bounds the truncated Poisson mass. *)

val accumulated :
  ?epsilon:float ->
  ?obs:Obs.Registry.t ->
  ?profile:Obs.Profile.t ->
  Explore.t ->
  t:float ->
  float array
(** [accumulated c ~t] is the expected total time spent in each state over
    [\[0, t\]] (entries sum to [t]). *)
