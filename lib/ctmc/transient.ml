(* One step of the uniformized DTMC: w = v P with P = I + Q/lambda. *)
let dtmc_step c lambda v =
  let n = Array.length v in
  let w = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let vi = v.(i) in
    if vi <> 0.0 then begin
      let out = Explore.exit_rate c i in
      w.(i) <- w.(i) +. (vi *. (1.0 -. (out /. lambda)));
      List.iter
        (fun (j, r) -> w.(j) <- w.(j) +. (vi *. r /. lambda))
        (Explore.transitions c i)
    end
  done;
  w

let initial_vector c =
  let v = Array.make (Explore.n_states c) 0.0 in
  List.iter (fun (i, p) -> v.(i) <- v.(i) +. p) (Explore.initial_dist c);
  v

(* Log-space Poisson weights for mean [mu], truncated to cumulative mass
   >= 1 - epsilon.  Returns (kmax, weights.(0..kmax)). *)
let poisson_weights ~mu ~epsilon =
  if mu = 0.0 then [| 1.0 |]
  else begin
    let log_w k =
      (-.mu) +. (float_of_int k *. log mu)
      -. Stats.Specfun.log_gamma (float_of_int k +. 1.0)
    in
    (* Walk right from the mode until the tail is below epsilon. *)
    let rec find_kmax k acc =
      let w = exp (log_w k) in
      let acc = acc +. w in
      if acc >= 1.0 -. epsilon then k else find_kmax (k + 1) acc
    in
    let kmax = find_kmax 0 0.0 in
    Array.init (kmax + 1) (fun k -> exp (log_w k))
  end

let check_time t =
  if t < 0.0 then invalid_arg "Ctmc.Transient: negative time"

(* Telemetry shared by both solvers: the truncated Poisson support size
   is the number of uniformized DTMC steps actually taken. *)
let in_solve profile f =
  match profile with
  | None -> f ()
  | Some p -> Obs.Profile.span p Obs.Profile.Ctmc_solve f

let export_obs obs ~lambda ~steps =
  match obs with
  | None -> ()
  | Some reg ->
      let module R = Obs.Registry in
      let s = R.scope reg "ctmc" in
      R.add (R.counter s "uniformization_steps") steps;
      R.set (R.gauge s "uniformization_lambda") lambda

let probabilities ?(epsilon = 1e-12) ?obs ?profile c ~t =
  check_time t;
  in_solve profile @@ fun () ->
  let v0 = initial_vector c in
  if t = 0.0 then v0
  else begin
    let lambda = Float.max (Explore.max_exit_rate c) 1e-9 *. 1.02 in
    let weights = poisson_weights ~mu:(lambda *. t) ~epsilon in
    export_obs obs ~lambda ~steps:(Array.length weights);
    let n = Array.length v0 in
    let result = Array.make n 0.0 in
    let v = ref v0 in
    Array.iteri
      (fun k w ->
        if k > 0 then v := dtmc_step c lambda !v;
        for i = 0 to n - 1 do
          result.(i) <- result.(i) +. (w *. !v.(i))
        done)
      weights;
    result
  end

let accumulated ?(epsilon = 1e-12) ?obs ?profile c ~t =
  check_time t;
  in_solve profile @@ fun () ->
  let n = Explore.n_states c in
  if t = 0.0 then Array.make n 0.0
  else begin
    let lambda = Float.max (Explore.max_exit_rate c) 1e-9 *. 1.02 in
    let weights = poisson_weights ~mu:(lambda *. t) ~epsilon in
    export_obs obs ~lambda ~steps:(Array.length weights);
    (* L(t) = (1/lambda) sum_k (1 - sum_{j<=k} w_j) v_k, truncated where the
       survivor weight is below epsilon relative mass; the truncation error
       is folded in by computing survivors against the renormalized sum. *)
    let kmax = Array.length weights - 1 in
    let survivors = Array.make (kmax + 1) 0.0 in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let cum = ref 0.0 in
    for k = 0 to kmax do
      cum := !cum +. (weights.(k) /. total);
      survivors.(k) <- Float.max 0.0 (1.0 -. !cum)
    done;
    let result = Array.make n 0.0 in
    let v = ref (initial_vector c) in
    for k = 0 to kmax do
      if k > 0 then v := dtmc_step c lambda !v;
      let w = survivors.(k) /. lambda in
      if w > 0.0 then
        for i = 0 to n - 1 do
          result.(i) <- result.(i) +. (w *. !v.(i))
        done
    done;
    (* The truncated tail contributes (t - sum result) spread according to
       v_kmax; fold it in so the entries sum to t exactly. *)
    let mass = Array.fold_left ( +. ) 0.0 result in
    let deficit = t -. mass in
    if deficit > 0.0 then begin
      let vk = !v in
      for i = 0 to n - 1 do
        result.(i) <- result.(i) +. (deficit *. vk.(i))
      done
    end;
    result
  end
