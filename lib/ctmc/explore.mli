(** State-space generation: SAN → continuous-time Markov chain.

    Reproduces Möbius's analytical path: starting from the initial
    marking, instantaneous activities are eliminated on the fly
    ({e vanishing-marking elimination}: each vanishing marking is resolved
    into a probability distribution over the stable markings reached
    through chains of instantaneous firings), and every timed activity
    must be exponentially distributed in every explored marking.

    Limits: effects must be deterministic given the marking (an effect
    that draws from the random stream raises through
    {!San.Activity.stream_exn}), and the reachable stable state space must
    be finite (bounded by [max_states]). *)

exception Non_markovian of string
(** A timed activity had a non-exponential distribution in some reachable
    marking. *)

exception Vanishing_loop of string
(** A chain of instantaneous firings did not terminate. *)

exception Too_many_states of int
(** Exploration exceeded [max_states]. *)

exception Unsound_canon of string
(** The [~audit:true] cross-check caught the supplied [canon] merging
    states with different one-step behaviour (or failing idempotence):
    the quotient chain would not be a lumping of the full chain. *)

type t

val explore :
  ?max_states:int ->
  ?canon:(int array * float array -> int array * float array) ->
  ?audit:bool ->
  ?obs:Obs.Registry.t ->
  ?profile:Obs.Profile.t ->
  San.Model.t ->
  t
(** Builds the CTMC. Default [max_states] is 200_000.

    [obs] receives the explored state and (merged) transition counts in
    scope ["ctmc"]; [profile] attributes the exploration to the
    [Ctmc_explore] phase (the phase is left open on an exploration
    exception, which aborts the analysis anyway).

    [canon], when supplied, maps every stable state key to a canonical
    representative before interning — the hook for exact lumping: when
    [canon] picks one representative per orbit of a symmetry of the
    model (see [Analysis.Symmetry]), the resulting chain is the lumped
    quotient and every measure over symmetric reward functions is
    preserved. [canon] must be pure and idempotent on its image; the
    default is the identity.

    [audit] (default [false]) cross-checks strong lumpability on the
    fly: for every distinct pre-canon key whose representative differs,
    the one-step successor-rate distribution over canonical classes of
    the key and of its representative must agree within 1e-9 relative
    tolerance (and [canon] must be idempotent there). Violations raise
    {!Unsound_canon}. Expanding both sides costs roughly the unlumped
    exploration on top of the lumped one — intended for validation runs
    and CI gates, not the hot path. *)

val n_states : t -> int

val initial_dist : t -> (int * float) list
(** Distribution over states at t = 0 (the initial marking can resolve
    through random instantaneous choices into several stable states). *)

val transitions : t -> int -> (int * float) list
(** [transitions c i] lists [(j, rate)] with merged parallel transitions
    and no self-loops. *)

val exit_rate : t -> int -> float
(** Total outgoing rate of state [i]. *)

val marking : t -> int -> San.Marking.t
(** The stable marking of state [i] (a shared read-only instance per call;
    do not mutate). *)

val eval : t -> (San.Marking.t -> float) -> float array
(** [eval c f] applies a marking function to every state. *)

val max_exit_rate : t -> float

val make_absorbing : t -> (int -> bool) -> t
(** [make_absorbing c is_absorbing] is the chain with every outgoing
    transition of the selected states removed — the standard first-passage
    transformation (see {!Measure.ever}). *)
