let instant c ~at f =
  let pi = Transient.probabilities c ~t:at in
  let values = Explore.eval c f in
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. (p *. values.(i))) pi;
  !acc

let interval_average c ?(from_ = 0.0) ~until f =
  if not (0.0 <= from_ && from_ < until) then
    invalid_arg "Ctmc.Measure.interval_average: bad window";
  let upto t = Transient.accumulated c ~t in
  let hi = upto until in
  let lo = if from_ = 0.0 then Array.map (fun _ -> 0.0) hi else upto from_ in
  let values = Explore.eval c f in
  let acc = ref 0.0 in
  Array.iteri
    (fun i v -> acc := !acc +. ((hi.(i) -. lo.(i)) *. v))
    values;
  !acc /. (until -. from_)

let ever c ~until pred =
  let flags = Explore.eval c (fun m -> if pred m then 1.0 else 0.0) in
  let absorbed = Explore.make_absorbing c (fun i -> flags.(i) = 1.0) in
  let pi = Transient.probabilities absorbed ~t:until in
  let acc = ref 0.0 in
  Array.iteri (fun i p -> if flags.(i) = 1.0 then acc := !acc +. p) pi;
  !acc

let steady_average c f =
  let pi = Steady.distribution c in
  let values = Explore.eval c f in
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. (p *. values.(i))) pi;
  !acc
