exception Vanishing_loop of string
exception Too_many_states of int
exception Work_budget of int
exception Bad_weights of string

type key = int array * float array

let default_ctx = { San.Activity.time = 0.0; stream = None }

let key_of_marking m =
  (San.Marking.int_snapshot m, San.Marking.float_snapshot m)

let restore model ((ints, floats) : key) =
  let m = San.Model.initial_marking model in
  Array.iteri
    (fun i p -> San.Marking.set m p ints.(i))
    (San.Model.places model);
  Array.iteri
    (fun i p -> San.Marking.fset m p floats.(i))
    (San.Model.float_places model);
  San.Marking.clear_journal m;
  m

let enabled_instantaneous model m =
  Array.fold_left
    (fun acc (a : San.Activity.t) ->
      if San.Activity.is_instantaneous a && a.enabled m then a :: acc else acc)
    []
    (San.Model.activities model)
  |> List.rev

let normalized_weights (a : San.Activity.t) m =
  let w = Array.map (fun c -> c.San.Activity.case_weight m) a.cases in
  let total = Array.fold_left ( +. ) 0.0 w in
  if not (total > 0.0) then
    raise
      (Bad_weights
         (Printf.sprintf "activity %s: case weights sum to %g" a.name total));
  Array.map (fun x -> x /. total) w

(* Apply one case's effect analytically: a [Pick] in the effect IR forks
   into its feasible branches with uniform weights instead of drawing
   randomness. Consumes [m]; a fan-out past [max_outcomes] becomes
   {!Too_many_states} so callers fall back like any other blow-up. *)
let case_outcomes ?(ctx = default_ctx) ?(max_outcomes = 4096)
    (a : San.Activity.t) case m =
  try San.Effect.outcomes ~ctx ~max_outcomes a.cases.(case).San.Activity.effect m
  with San.Effect.Too_many_outcomes -> raise (Too_many_states max_outcomes)

(* Resolve a marking into its stable-marking distribution by eliminating
   chains of instantaneous firings: uniform choice among the enabled
   instantaneous activities, case probabilities within each.  A cycle of
   vanishing markings shows up as unbounded recursion depth. *)
let resolve_vanishing ?(ctx = default_ctx) ?(max_depth = 10_000)
    ?(max_width = 50_000) ?(charge = fun () -> ()) ?on_vanishing model m0 =
  let acc = Hashtbl.create 8 in
  let width = ref 0 in
  let rec go m prob depth =
    incr width;
    charge ();
    if !width > max_width then raise (Too_many_states max_width);
    if depth > max_depth then
      raise
        (Vanishing_loop
           "instantaneous activities did not stabilize (cycle suspected)");
    match enabled_instantaneous model m with
    | [] ->
        let k = key_of_marking m in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc k) in
        Hashtbl.replace acc k (prev +. prob)
    | enabled ->
        (match on_vanishing with
        | Some f -> f m enabled
        | None -> ());
        let p_act = prob /. float_of_int (List.length enabled) in
        List.iter
          (fun (a : San.Activity.t) ->
            let weights = normalized_weights a m in
            Array.iteri
              (fun case w ->
                if w > 0.0 then
                  List.iter
                    (fun (wo, m') -> go m' (p_act *. w *. wo) (depth + 1))
                    (case_outcomes ~ctx a case (San.Marking.copy m)))
              weights)
          enabled
  in
  go m0 1.0 0;
  Hashtbl.fold (fun k p l -> (k, p) :: l) acc []

(* Growable array of state keys. *)
module Pool = struct
  type nonrec t = {
    mutable arr : key array;
    mutable size : int;
    index : (key, int) Hashtbl.t;
  }

  let dummy_key : key = ([||], [||])

  let create () =
    { arr = Array.make 256 dummy_key; size = 0; index = Hashtbl.create 1024 }

  (* Returns (id, freshly created?). *)
  let intern p ~max_states k =
    match Hashtbl.find_opt p.index k with
    | Some i -> (i, false)
    | None ->
        if p.size >= max_states then raise (Too_many_states max_states);
        if p.size = Array.length p.arr then begin
          let arr = Array.make (2 * p.size) dummy_key in
          Array.blit p.arr 0 arr 0 p.size;
          p.arr <- arr
        end;
        let i = p.size in
        p.arr.(i) <- k;
        p.size <- p.size + 1;
        Hashtbl.add p.index k i;
        (i, true)

  let size p = p.size
  let get p i = p.arr.(i)
end

let reachable ?(max_states = 200_000) ?(max_work = 10_000_000)
    ?(ctx = default_ctx) ?on_vanishing model =
  let pool = Pool.create () in
  let frontier = Queue.create () in
  (* Deterministic effort bound: one unit per vanishing-resolution visit
     (the expensive step — an [enabled_instantaneous] scan plus effect
     forks). Models whose per-state cost is pathological trip it long
     before [max_states], so callers can fall back to sampling in
     seconds rather than minutes. *)
  let work = ref 0 in
  let charge () =
    incr work;
    if !work > max_work then raise (Work_budget max_work)
  in
  let intern k =
    let i, fresh = Pool.intern pool ~max_states k in
    if fresh then Queue.add i frontier
  in
  (* A broken effect (negative marking) prunes only its own successor; a
     broken weight function degrades to exploring every case. *)
  let successors_of_case m (a : San.Activity.t) case =
    match
      case_outcomes ~ctx a case (San.Marking.copy m)
      |> List.concat_map (fun (_, m') ->
             resolve_vanishing ~ctx ~charge ?on_vanishing model m')
    with
    | keys -> List.iter (fun (k, _) -> intern k) keys
    | exception Invalid_argument _ -> ()
  in
  List.iter
    (fun (k, _) -> intern k)
    (resolve_vanishing ~ctx ~charge ?on_vanishing model
       (San.Model.initial_marking model));
  while not (Queue.is_empty frontier) do
    let i = Queue.pop frontier in
    let m = restore model (Pool.get pool i) in
    Array.iter
      (fun (a : San.Activity.t) ->
        match a.San.Activity.timing with
        | San.Activity.Instantaneous -> ()
        | San.Activity.Timed _ ->
            if a.enabled m then begin
              match normalized_weights a m with
              | weights ->
                  Array.iteri
                    (fun case w -> if w > 0.0 then successors_of_case m a case)
                    weights
              | exception Bad_weights _ ->
                  Array.iteri
                    (fun case _ -> successors_of_case m a case)
                    a.cases
            end)
      (San.Model.activities model)
  done;
  Array.init (Pool.size pool) (Pool.get pool)
