(** Shared reachable-marking walker.

    Both the CTMC generator ({!Explore}) and the static model checker
    (the [analysis] library) need to enumerate the stable markings a SAN
    can reach and to resolve {e vanishing} markings — markings with
    enabled instantaneous activities — into distributions over stable
    ones. This module is that shared machinery, factored out of
    {!Explore} so the checker can walk models whose timed activities are
    {e not} exponential: reachability only executes effects, it never
    needs rates.

    The walk is purely analytical: effects run with a caller-supplied
    {!San.Activity.ctx} (by default one with no random stream, so an
    effect that draws randomness raises [Failure] through
    {!San.Activity.stream_exn} — callers catch it and fall back to
    sampling). Effects that would drive a marking negative raise
    [Invalid_argument] from {!San.Marking.set}; {!reachable} skips such
    successors so one broken effect does not hide the rest of the
    space. *)

exception Vanishing_loop of string
(** A chain of instantaneous firings did not terminate. *)

exception Too_many_states of int
(** Enumeration exceeded the caller's state bound. *)

exception Work_budget of int
(** {!reachable} exceeded its [max_work] effort bound before exhausting
    the space — the per-state cost, not the state count, is the
    blow-up. Callers fall back to sampling exactly as for
    {!Too_many_states}. *)

exception Bad_weights of string
(** Some activity's case weights did not sum to a positive number. *)

type key = int array * float array
(** A stable marking, snapshot as hashable arrays. *)

val default_ctx : San.Activity.ctx
(** [{ time = 0.0; stream = None }]: the analytical evaluation context —
    effects that draw randomness raise [Failure]. *)

val key_of_marking : San.Marking.t -> key

val restore : San.Model.t -> key -> San.Marking.t
(** A fresh marking holding the keyed state (journal cleared). *)

val enabled_instantaneous :
  San.Model.t -> San.Marking.t -> San.Activity.t list
(** Enabled instantaneous activities, in declaration order. *)

val normalized_weights : San.Activity.t -> San.Marking.t -> float array
(** Case probabilities normalized to sum to 1; raises {!Bad_weights} if
    the weights sum to zero or less. *)

val case_outcomes :
  ?ctx:San.Activity.ctx ->
  ?max_outcomes:int ->
  San.Activity.t ->
  int ->
  San.Marking.t ->
  (float * San.Marking.t) list
(** [case_outcomes a case m] applies case [case]'s effect analytically:
    an {!San.Effect.Pick} forks into its feasible branches with uniform
    weights instead of drawing randomness, so IR effects never need a
    stream. Consumes [m]. A fan-out beyond [max_outcomes] (default
    4096) raises {!Too_many_states}; an [Opaque] closure that draws
    randomness still raises [Failure] via [stream_exn]. *)

val resolve_vanishing :
  ?ctx:San.Activity.ctx ->
  ?max_depth:int ->
  ?max_width:int ->
  ?charge:(unit -> unit) ->
  ?on_vanishing:(San.Marking.t -> San.Activity.t list -> unit) ->
  San.Model.t ->
  San.Marking.t ->
  (key * float) list
(** [resolve_vanishing model m] eliminates chains of instantaneous
    firings starting from [m] (uniform choice among the enabled set,
    case probabilities within each activity, {!San.Effect.Pick} forks
    with uniform weights) and returns the resulting distribution over
    stable markings. [charge] (default a no-op) is invoked once per
    visited marking — {!reachable} uses it to meter its work budget.
    [on_vanishing] is called on every visited
    vanishing marking with its enabled instantaneous set (two or more
    entries is the tie an executor resolves by a coin flip); the
    marking must not be retained without copying. Raises
    {!Vanishing_loop} past [max_depth] (default 10_000) firings on one
    path, and {!Too_many_states} past [max_width] (default 50_000)
    visited markings in one resolution — the symptom of a
    combinatorial [Pick] cascade. [m] is not modified. *)

(** Growable interning pool of state keys. *)
module Pool : sig
  type t

  val create : unit -> t

  val intern : t -> max_states:int -> key -> int * bool
  (** [(id, fresh)]; raises {!Too_many_states} at the cap. *)

  val size : t -> int
  val get : t -> int -> key
end

val reachable :
  ?max_states:int ->
  ?max_work:int ->
  ?ctx:San.Activity.ctx ->
  ?on_vanishing:(San.Marking.t -> San.Activity.t list -> unit) ->
  San.Model.t ->
  key array
(** [reachable model] enumerates every stable marking reachable from the
    initial marking through timed firings (all cases with positive
    weight) and instantaneous resolution, breadth-first. Successors
    whose effect raises [Invalid_argument] (negative marking) are
    skipped; {!Bad_weights} on an activity causes {e all} its cases to
    be explored (the checker reports the weight bug separately).
    [on_vanishing] is forwarded to every {!resolve_vanishing} the walk
    performs, so a caller sees each vanishing marking encountered
    anywhere in the reachable space. Default [max_states] is
    200_000. The walk also meters its total vanishing-resolution
    visits and raises {!Work_budget} past [max_work] (default
    10_000_000): a model whose {e per-state} resolution cost explodes
    (deep instantaneous cascades over hundreds of activities) is
    abandoned deterministically instead of grinding for minutes toward
    the state cap. *)
