let absorbing_states c =
  let n = Explore.n_states c in
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if Explore.exit_rate c i = 0.0 then i :: acc else acc)
  in
  collect (n - 1) []

(* Gauss-Seidel on x_i = b_i + sum_j (r_ij / E_i) x_j over transient
   states; absorbing states are fixed at [absorbing_value i]. *)
let solve_first_step ?(tol = 1e-12) ?(max_iter = 1_000_000) c ~b
    ~absorbing_value =
  let n = Explore.n_states c in
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    if Explore.exit_rate c i = 0.0 then x.(i) <- absorbing_value i
  done;
  let delta = ref infinity in
  let sweeps = ref 0 in
  while !delta > tol && !sweeps < max_iter do
    incr sweeps;
    let d = ref 0.0 in
    for i = 0 to n - 1 do
      let e = Explore.exit_rate c i in
      if e > 0.0 then begin
        let acc = ref (b i) in
        List.iter
          (fun (j, r) -> acc := !acc +. (r /. e *. x.(j)))
          (Explore.transitions c i);
        let prev = x.(i) in
        x.(i) <- !acc;
        d := Float.max !d (Float.abs (x.(i) -. prev))
      end
    done;
    delta := !d
  done;
  if !delta > tol then
    failwith
      (Printf.sprintf
         "Ctmc.Absorb: no convergence after %d sweeps (delta %g); is an \
          absorbing state reachable with probability 1?"
         max_iter !delta);
  x

let from_initial c x =
  List.fold_left
    (fun acc (i, p) -> acc +. (p *. x.(i)))
    0.0 (Explore.initial_dist c)

let mean_time_to_absorption ?tol ?max_iter c =
  if absorbing_states c = [] then
    failwith "Ctmc.Absorb: chain has no absorbing state";
  let x =
    solve_first_step ?tol ?max_iter c
      ~b:(fun i -> 1.0 /. Explore.exit_rate c i)
      ~absorbing_value:(fun _ -> 0.0)
  in
  from_initial c x

let absorption_probabilities ?tol ?max_iter c ~target =
  if absorbing_states c = [] then
    failwith "Ctmc.Absorb: chain has no absorbing state";
  let x =
    solve_first_step ?tol ?max_iter c
      ~b:(fun _ -> 0.0)
      ~absorbing_value:(fun i -> if target i then 1.0 else 0.0)
  in
  from_initial c x
