let now_ns () = Monotonic_clock.now ()
let ns_to_s ns = Int64.to_float ns *. 1e-9

let seconds_since t0 =
  Float.max 0.0 (ns_to_s (Int64.sub (now_ns ()) t0))
