(** Phase profiler: monotonic wall-clock self-time per engine phase.

    A profiler attributes elapsed time to a stack of phases: {!enter}
    charges the interval since the last clock reading to the phase that
    was on top, pushes the new phase, and {!leave} pops it — so a
    phase's {e self-time} excludes the time spent in phases nested
    inside it, and the self-times over a run sum to at most the run's
    wall-clock time (pinned by a test). Counts are tracked per phase
    too, making "mean ns per propagate" a one-division read.

    The executor instruments its hot phases (propagate, stabilize,
    sampling, heap push/pop, checkpoint/clone) when — and only when — a
    profiler is passed; with no profiler the only cost is one option
    match per site. The CTMC stack instruments exploration and solver
    iterations the same way.

    With [~spans:true] every completed phase interval is additionally
    recorded as a span (start, duration, phase, tid), bounded by
    [max_spans]; {!write_trace} renders them as Chrome trace-event JSON
    lines ([chrome://tracing], Perfetto, speedscope) for flamegraph
    viewing.

    Per-run GC statistics (minor/major collections, allocated words)
    are captured from [Gc.quick_stat] deltas. A profiler is not
    domain-safe: {!fork} one per domain inside the domain and {!merge}
    after joining; call {!gc_capture} inside the owning domain before
    the merge so GC deltas are read from the right domain-local heap
    (as {!Sim.Runner} does). *)

type phase =
  | Propagate  (** dependency re-evaluation after a firing *)
  | Stabilize  (** instantaneous-activity chains *)
  | Sample  (** delay distribution draws *)
  | Heap_push  (** event-heap insertion *)
  | Heap_pop  (** event-heap extraction *)
  | Checkpoint  (** checkpoint capture and clone resume (splitting) *)
  | Ctmc_explore  (** state-space generation *)
  | Ctmc_solve  (** steady/transient solver iterations *)

val phases : phase array
(** Every phase, in declaration order. *)

val phase_name : phase -> string
(** Stable snake_case name used in snapshots and trace spans. *)

type t

val create : ?spans:bool -> ?max_spans:int -> unit -> t
(** A fresh profiler; [spans] (default false) records per-interval
    spans, at most [max_spans] (default 200_000) of them — further
    spans are counted as dropped but self-times stay exact. *)

val fork : ?tid:int -> t -> t
(** A fresh profiler with the parent's configuration, for a worker
    domain. [tid] labels its spans (default 0). *)

val enter : t -> phase -> unit
val leave : t -> unit

val span : t -> phase -> (unit -> 'a) -> 'a
(** [span t p f] runs [f] inside phase [p] (exception-safe). *)

val gc_capture : t -> unit
(** Fold the GC-statistics delta since creation (or the previous
    capture) into the profiler's totals. Must run in the domain that
    owns the profiler. Idempotent between phase activity. *)

val merge : into:t -> t -> unit
(** Add self-times, counts, GC totals; append spans. *)

val self_seconds : t -> phase -> float
val count : t -> phase -> int

val attributed_seconds : t -> float
(** Sum of every phase's self-time — at most the enclosing run's
    wall-clock time. *)

val gc_minor_collections : t -> int
val gc_major_collections : t -> int

val gc_allocated_words : t -> float
(** Words allocated (minor + major - promoted) across captures. *)

val export : t -> into:Registry.t -> unit
(** Fill the registry's ["profile"] scope: per-phase [<p>_self_seconds]
    (volatile gauge), [<p>_count] (counter), the GC totals, and
    [spans_dropped]. Calls {!gc_capture} first. *)

val pp : Format.formatter -> t -> unit
(** Table of phase, count, self-time and mean ns, plus GC totals. *)

val write_trace : string -> t -> unit
(** Write recorded spans as Chrome trace-event JSONL: one complete
    ("ph":"X") event per line with microsecond [ts] (relative to the
    profiler's creation) and [dur], named by {!phase_name}. Load in
    Perfetto or [chrome://tracing]. *)
