(** Estimator-convergence recorder: CI half-width vs. replication
    count, per measure.

    Sequential stopping ("run until every relative half-width is below
    P") is only auditable if the trajectory that led to the stop is
    kept: how fast each measure's interval shrank, which measure was
    binding, and whether the 1/√n regime had set in before the stop.
    A recorder accumulates [(measure, n, value, half_width)] points —
    {!Sim.Runner} records one per measure per chunk/batch, splitting
    exports one per completed stage, and the CTMC solvers record their
    iteration deltas — and renders them as CSV
    ([measure,n,value,half_width,confidence]) or as the ["convergence"]
    block of an [itua-metrics/1] snapshot.

    Points are recorded from the coordinating thread only (after
    per-domain results merge), so a recorder needs no synchronization
    and the recorded estimates are the deterministic merged ones. *)

type point = {
  measure : string;
  n : int;  (** replications / trials / iterations behind the value *)
  value : float;  (** current estimate (or solver residual) *)
  half_width : float;  (** CI half-width; [nan] when not applicable *)
  confidence : float;  (** interval confidence; [nan] when n/a *)
}

type t

val create : unit -> t

val record :
  ?half_width:float -> ?confidence:float -> t -> measure:string -> n:int ->
  value:float -> unit
(** Append one point (defaults: [half_width] and [confidence] nan). *)

val points : t -> point list
(** In record order. *)

val is_empty : t -> bool

val csv_header : string list
(** [measure,n,value,half_width,confidence]. *)

val csv_rows : t -> string list list
(** One row per point, floats rendered by the deterministic
    [Report.Json] float writer (non-finite as empty cells). *)

val write_csv : string -> t -> unit

val to_json : t -> Report.Json.t
(** Array of point objects; non-finite numbers render as [null]. *)
