(** The unified metrics registry: named counters, gauges and
    log-bucketed histograms grouped into scopes, with deterministic
    [itua-metrics/1] JSON snapshots.

    A registry is a passive store written at {e export} time — the hot
    engine paths keep counting into their own flat scratch
    ({!Sim.Metrics}, the executor's run-local arrays) and dump into a
    registry only when a snapshot is wanted, so simulation with no
    snapshot configured pays nothing.

    {2 Determinism and the volatile flag}

    A snapshot must be byte-identical across [--cores 1] and
    [--cores N] for the same seed, the same discipline as trajectory
    recording. Counters and histograms only ever hold integers (or
    integer-valued floats below 2{^53}, whose partial sums are exact),
    so additive merging is order-independent and the deterministic
    claim holds structurally. Metrics whose value depends on wall-clock
    time or the GC — throughput, self-times, collection counts — are
    registered [~volatile:true] and can be omitted from a snapshot with
    [to_json ~volatile:false], which is what the determinism test pins.

    {2 Merging}

    Per-domain registries (or per-domain engine sinks exported into
    one) merge by metric name: counters and histograms add; a gauge
    combines by its declared policy ([`Sum], [`Max] or [`Min]).
    Registering the same name twice in one scope returns the same
    handle, so export functions are idempotent targets. *)

type t
type scope
type counter
type gauge
type histogram

val create : unit -> t
(** An empty registry. Not domain-safe: give each domain its own and
    {!merge} afterwards (as {!Sim.Runner} does with engine sinks). *)

val scope : t -> string -> scope
(** [scope t name] is the named metric group, created on first use.
    Scope names sort lexicographically in snapshots. *)

val counter : ?volatile:bool -> scope -> string -> counter
(** A monotone integer counter (default [volatile:false]). *)

val gauge :
  ?volatile:bool -> ?merge:[ `Sum | `Max | `Min ] -> scope -> string -> gauge
(** A float gauge holding the last value {!set} (or the sum of
    {!gauge_add}s). [merge] (default [`Max]) says how two registries'
    values combine. *)

val histogram : ?volatile:bool -> scope -> string -> histogram
(** A base-2 log-bucketed histogram: observation [v] lands in the
    first bucket with upper bound [2^i >= v] (all non-positive values
    in bucket [le 1]); count, sum, min and max are tracked exactly. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_add : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit

val observe_raw :
  histogram ->
  counts:int array ->
  n:int ->
  sum:float ->
  min_:float ->
  max_:float ->
  unit
(** Fold pre-bucketed data into the histogram: [counts.(i)] adds to
    bucket [i] (indices beyond the bucket range land in the last
    bucket). For export paths that already bucketed on the hot path. *)

val merge : into:t -> t -> unit
(** Merge every metric of the source into [into] by scope and metric
    name, creating missing ones. Raises [Invalid_argument] when the
    same name is registered with different kinds. *)

val to_json : ?volatile:bool -> ?extra:(string * Report.Json.t) list -> t
  -> Report.Json.t
(** The [itua-metrics/1] snapshot: scopes sorted by name, metrics
    sorted by name within each scope, rendered deterministically by
    [Report.Json]. [~volatile:false] omits volatile metrics (the
    deterministic core). [extra] fields are appended to the top-level
    object after ["scopes"]. Non-finite gauge values render as
    [null]. *)

val write : ?volatile:bool -> ?extra:(string * Report.Json.t) list
  -> string -> t -> unit
(** [write path t] saves {!to_json} as a single JSON line. *)

val pp : Format.formatter -> t -> unit
(** Human-readable table of every scope and metric. *)
