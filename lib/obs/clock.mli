(** Monotonic wall-clock readings for duration measurement.

    Every duration in the telemetry stack is computed from this clock
    (CLOCK_MONOTONIC via the bechamel stubs), never from
    [Unix.gettimeofday]: a wall-time step (NTP adjustment, suspend)
    must not produce negative or wildly wrong elapsed times in
    events/sec figures or profiler self-times. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. Only differences are
    meaningful; the epoch is unspecified (typically boot time). *)

val seconds_since : int64 -> float
(** [seconds_since t0] is the elapsed seconds between [t0] (an earlier
    {!now_ns} reading) and now; never negative. *)

val ns_to_s : int64 -> float
(** Convert a nanosecond duration to seconds. *)
