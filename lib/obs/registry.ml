(* Buckets cover upper bounds 2^0 .. 2^(n_buckets-1); anything larger
   lands in the last bucket. 63 buckets reach 2^62, past any count or
   nanosecond total the engine can produce. *)
let n_buckets = 63

type hist_state = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_counts : int array;
}

type value =
  | Counter of int ref
  | Gauge of { mutable g : float; g_merge : [ `Sum | `Max | `Min ] }
  | Histogram of hist_state

type metric = { m_name : string; m_volatile : bool; m_value : value }
type scope = { s_name : string; s_metrics : (string, metric) Hashtbl.t }
type t = { scopes : (string, scope) Hashtbl.t }
type counter = int ref
type gauge = value
type histogram = hist_state

let create () = { scopes = Hashtbl.create 8 }

let scope t name =
  match Hashtbl.find_opt t.scopes name with
  | Some s -> s
  | None ->
      let s = { s_name = name; s_metrics = Hashtbl.create 16 } in
      Hashtbl.add t.scopes name s;
      s

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register s ~name ~volatile ~make ~cast =
  match Hashtbl.find_opt s.s_metrics name with
  | Some m -> cast m.m_value
  | None ->
      let v = make () in
      Hashtbl.add s.s_metrics name
        { m_name = name; m_volatile = volatile; m_value = v };
      cast v

let counter ?(volatile = false) s name =
  register s ~name ~volatile
    ~make:(fun () -> Counter (ref 0))
    ~cast:(function
      | Counter r -> r
      | v ->
          invalid_arg
            (Printf.sprintf "Obs.Registry: %s.%s is a %s, not a counter"
               s.s_name name (kind_name v)))

let gauge ?(volatile = false) ?(merge = `Max) s name =
  register s ~name ~volatile
    ~make:(fun () -> Gauge { g = nan; g_merge = merge })
    ~cast:(function
      | Gauge _ as v -> v
      | v ->
          invalid_arg
            (Printf.sprintf "Obs.Registry: %s.%s is a %s, not a gauge"
               s.s_name name (kind_name v)))

let fresh_hist () =
  {
    h_count = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
    h_counts = Array.make n_buckets 0;
  }

let histogram ?(volatile = false) s name =
  register s ~name ~volatile
    ~make:(fun () -> Histogram (fresh_hist ()))
    ~cast:(function
      | Histogram h -> h
      | v ->
          invalid_arg
            (Printf.sprintf "Obs.Registry: %s.%s is a %s, not a histogram"
               s.s_name name (kind_name v)))

let incr c = Stdlib.incr c
let add c n = c := !c + n
let counter_value c = !c

let set g v = match g with Gauge g -> g.g <- v | _ -> assert false

let gauge_add g v =
  match g with
  | Gauge g -> g.g <- (if Float.is_nan g.g then v else g.g +. v)
  | _ -> assert false

let gauge_value g = match g with Gauge g -> g.g | _ -> assert false

(* First bucket whose upper bound 2^i covers v; non-positive values in
   bucket 0. *)
let bucket_of v =
  if not (v > 1.0) then 0
  else begin
    let i = ref 0 in
    let bound = ref 1.0 in
    while !bound < v && !i < n_buckets - 1 do
      incr i;
      bound := !bound *. 2.0
    done;
    !i
  end

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.h_counts.(b) <- h.h_counts.(b) + 1

let observe_raw h ~counts ~n ~sum ~min_ ~max_ =
  if n > 0 then begin
    h.h_count <- h.h_count + n;
    h.h_sum <- h.h_sum +. sum;
    if min_ < h.h_min then h.h_min <- min_;
    if max_ > h.h_max then h.h_max <- max_;
    Array.iteri
      (fun i c ->
        let i = Int.min i (n_buckets - 1) in
        h.h_counts.(i) <- h.h_counts.(i) + c)
      counts
  end

let merge_value ~where into src =
  match (into, src) with
  | Counter a, Counter b -> a := !a + !b
  | Gauge a, Gauge b ->
      if not (Float.is_nan b.g) then
        a.g <-
          (if Float.is_nan a.g then b.g
           else
             match a.g_merge with
             | `Sum -> a.g +. b.g
             | `Max -> Float.max a.g b.g
             | `Min -> Float.min a.g b.g)
  | Histogram a, Histogram b ->
      observe_raw a ~counts:b.h_counts ~n:b.h_count ~sum:b.h_sum ~min_:b.h_min
        ~max_:b.h_max
  | _ ->
      invalid_arg
        (Printf.sprintf "Obs.Registry.merge: %s registered as %s and %s" where
           (kind_name into) (kind_name src))

let merge ~into src =
  Hashtbl.iter
    (fun sname (s : scope) ->
      let dst = scope into sname in
      Hashtbl.iter
        (fun mname m ->
          match Hashtbl.find_opt dst.s_metrics mname with
          | Some m' ->
              merge_value ~where:(sname ^ "." ^ mname) m'.m_value m.m_value
          | None ->
              let copy =
                match m.m_value with
                | Counter r -> Counter (ref !r)
                | Gauge g -> Gauge { g = g.g; g_merge = g.g_merge }
                | Histogram h ->
                    Histogram
                      {
                        h_count = h.h_count;
                        h_sum = h.h_sum;
                        h_min = h.h_min;
                        h_max = h.h_max;
                        h_counts = Array.copy h.h_counts;
                      }
              in
              Hashtbl.add dst.s_metrics mname
                { m_name = mname; m_volatile = m.m_volatile; m_value = copy })
        s.s_metrics)
    src.scopes

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let num_or_null v =
  if Float.is_finite v then Report.Json.Num v else Report.Json.Null

let metric_to_json m =
  let module J = Report.Json in
  let base = [ ("name", J.Str m.m_name); ("kind", J.Str (kind_name m.m_value)) ] in
  let payload =
    match m.m_value with
    | Counter r -> [ ("value", J.int !r) ]
    | Gauge g -> [ ("value", num_or_null g.g) ]
    | Histogram h ->
        let buckets = ref [] in
        for i = n_buckets - 1 downto 0 do
          if h.h_counts.(i) > 0 then
            buckets :=
              J.Obj
                [
                  ("le", J.Num (Float.pow 2.0 (float_of_int i)));
                  ("count", J.int h.h_counts.(i));
                ]
              :: !buckets
        done;
        [
          ("count", J.int h.h_count);
          ("sum", num_or_null h.h_sum);
          ("min", if h.h_count = 0 then J.Null else num_or_null h.h_min);
          ("max", if h.h_count = 0 then J.Null else num_or_null h.h_max);
          ("buckets", J.Arr !buckets);
        ]
  in
  let volatile = if m.m_volatile then [ ("volatile", J.Bool true) ] else [] in
  J.Obj (base @ payload @ volatile)

let to_json ?(volatile = true) ?(extra = []) t =
  let module J = Report.Json in
  let scopes =
    sorted_bindings t.scopes
    |> List.filter_map (fun (sname, s) ->
           let metrics =
             sorted_bindings s.s_metrics
             |> List.filter_map (fun (_, m) ->
                    if m.m_volatile && not volatile then None
                    else Some (metric_to_json m))
           in
           if metrics = [] then None
           else
             Some
               (J.Obj [ ("scope", J.Str sname); ("metrics", J.Arr metrics) ]))
  in
  J.Obj
    ([ ("schema", J.Str "itua-metrics/1"); ("scopes", J.Arr scopes) ] @ extra)

let write ?volatile ?extra path t =
  Report.write_jsonl path [ to_json ?volatile ?extra t ]

let pp ppf t =
  List.iter
    (fun (sname, s) ->
      Format.fprintf ppf "%s:@." sname;
      List.iter
        (fun (_, m) ->
          match m.m_value with
          | Counter r -> Format.fprintf ppf "  %-32s %d@." m.m_name !r
          | Gauge g -> Format.fprintf ppf "  %-32s %.6g@." m.m_name g.g
          | Histogram h ->
              Format.fprintf ppf "  %-32s n=%d sum=%.6g min=%.6g max=%.6g@."
                m.m_name h.h_count h.h_sum
                (if h.h_count = 0 then nan else h.h_min)
                (if h.h_count = 0 then nan else h.h_max))
        (sorted_bindings s.s_metrics))
    (sorted_bindings t.scopes)
