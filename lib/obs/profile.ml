type phase =
  | Propagate
  | Stabilize
  | Sample
  | Heap_push
  | Heap_pop
  | Checkpoint
  | Ctmc_explore
  | Ctmc_solve

let phases =
  [|
    Propagate; Stabilize; Sample; Heap_push; Heap_pop; Checkpoint;
    Ctmc_explore; Ctmc_solve;
  |]

let n_phases = Array.length phases

let phase_index = function
  | Propagate -> 0
  | Stabilize -> 1
  | Sample -> 2
  | Heap_push -> 3
  | Heap_pop -> 4
  | Checkpoint -> 5
  | Ctmc_explore -> 6
  | Ctmc_solve -> 7

let phase_name = function
  | Propagate -> "propagate"
  | Stabilize -> "stabilize"
  | Sample -> "sample"
  | Heap_push -> "heap_push"
  | Heap_pop -> "heap_pop"
  | Checkpoint -> "checkpoint"
  | Ctmc_explore -> "ctmc_explore"
  | Ctmc_solve -> "ctmc_solve"

type span_rec = { sp_phase : int; sp_start : int64; sp_dur : int64; sp_tid : int }

type t = {
  self_ns : int64 array;  (* per phase: accumulated self-time *)
  counts : int array;  (* per phase: enter count *)
  stack : int array;  (* phase indices of the open spans *)
  starts : int64 array;  (* enter time of each open span *)
  mutable depth : int;
  mutable last : int64;  (* clock reading of the last enter/leave *)
  t0 : int64;  (* creation time: span timestamps are relative to it *)
  tid : int;
  record_spans : bool;
  max_spans : int;
  mutable spans : span_rec list;  (* newest first *)
  mutable n_spans : int;
  mutable dropped_spans : int;
  (* GC deltas folded in by gc_capture; baseline from Gc.quick_stat. *)
  mutable gc_minor : int;
  mutable gc_major : int;
  mutable gc_words : float;
  mutable gc_base : Gc.stat;
}

let max_stack = 64

let make ~spans ~max_spans ~tid ~t0 =
  {
    self_ns = Array.make n_phases 0L;
    counts = Array.make n_phases 0;
    stack = Array.make max_stack 0;
    starts = Array.make max_stack 0L;
    depth = 0;
    last = Clock.now_ns ();
    t0;
    tid;
    record_spans = spans;
    max_spans;
    spans = [];
    n_spans = 0;
    dropped_spans = 0;
    gc_minor = 0;
    gc_major = 0;
    gc_words = 0.0;
    gc_base = Gc.quick_stat ();
  }

let create ?(spans = false) ?(max_spans = 200_000) () =
  make ~spans ~max_spans ~tid:0 ~t0:(Clock.now_ns ())

let fork ?(tid = 0) t =
  make ~spans:t.record_spans ~max_spans:t.max_spans ~tid ~t0:t.t0

let charge t now =
  if t.depth > 0 then begin
    let i = t.stack.(t.depth - 1) in
    t.self_ns.(i) <- Int64.add t.self_ns.(i) (Int64.sub now t.last)
  end;
  t.last <- now

let enter t phase =
  let now = Clock.now_ns () in
  charge t now;
  if t.depth >= max_stack then invalid_arg "Obs.Profile: phase stack overflow";
  let i = phase_index phase in
  t.stack.(t.depth) <- i;
  t.starts.(t.depth) <- now;
  t.depth <- t.depth + 1;
  t.counts.(i) <- t.counts.(i) + 1

let leave t =
  if t.depth = 0 then invalid_arg "Obs.Profile.leave: no open phase";
  let now = Clock.now_ns () in
  charge t now;
  t.depth <- t.depth - 1;
  if t.record_spans then begin
    if t.n_spans < t.max_spans then begin
      let start = t.starts.(t.depth) in
      t.spans <-
        {
          sp_phase = t.stack.(t.depth);
          sp_start = Int64.sub start t.t0;
          sp_dur = Int64.sub now start;
          sp_tid = t.tid;
        }
        :: t.spans;
      t.n_spans <- t.n_spans + 1
    end
    else t.dropped_spans <- t.dropped_spans + 1
  end

let span t phase f =
  enter t phase;
  match f () with
  | v ->
      leave t;
      v
  | exception e ->
      leave t;
      raise e

let gc_capture t =
  let s = Gc.quick_stat () in
  let b = t.gc_base in
  t.gc_minor <- t.gc_minor + (s.Gc.minor_collections - b.Gc.minor_collections);
  t.gc_major <- t.gc_major + (s.Gc.major_collections - b.Gc.major_collections);
  t.gc_words <-
    t.gc_words
    +. (s.Gc.minor_words -. b.Gc.minor_words)
    +. (s.Gc.major_words -. b.Gc.major_words)
    -. (s.Gc.promoted_words -. b.Gc.promoted_words);
  t.gc_base <- s

let merge ~into src =
  for i = 0 to n_phases - 1 do
    into.self_ns.(i) <- Int64.add into.self_ns.(i) src.self_ns.(i);
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.gc_minor <- into.gc_minor + src.gc_minor;
  into.gc_major <- into.gc_major + src.gc_major;
  into.gc_words <- into.gc_words +. src.gc_words;
  into.dropped_spans <- into.dropped_spans + src.dropped_spans;
  if into.record_spans then begin
    (* Keep global caps: excess merged spans count as dropped. *)
    let keep = Int.max 0 (into.max_spans - into.n_spans) in
    let taken = Int.min keep src.n_spans in
    let rec take n acc = function
      | s :: rest when n > 0 -> take (n - 1) (s :: acc) rest
      | _ -> acc
    in
    (* src.spans is newest-first; keep its oldest [taken]. *)
    let oldest_first = List.rev src.spans in
    let kept = List.rev (take taken [] oldest_first) in
    into.spans <- kept @ into.spans;
    into.n_spans <- into.n_spans + taken;
    into.dropped_spans <- into.dropped_spans + (src.n_spans - taken)
  end

let self_seconds t phase = Clock.ns_to_s t.self_ns.(phase_index phase)
let count t phase = t.counts.(phase_index phase)

let attributed_seconds t =
  Clock.ns_to_s (Array.fold_left Int64.add 0L t.self_ns)

let gc_minor_collections t = t.gc_minor
let gc_major_collections t = t.gc_major
let gc_allocated_words t = t.gc_words

let export t ~into =
  gc_capture t;
  let s = Registry.scope into "profile" in
  Array.iter
    (fun p ->
      let n = phase_name p in
      Registry.set
        (Registry.gauge ~volatile:true ~merge:`Sum s (n ^ "_self_seconds"))
        (self_seconds t p);
      Registry.add (Registry.counter s (n ^ "_count")) (count t p))
    phases;
  Registry.set
    (Registry.gauge ~volatile:true ~merge:`Sum s "attributed_seconds")
    (attributed_seconds t);
  Registry.add
    (Registry.counter ~volatile:true s "gc_minor_collections")
    t.gc_minor;
  Registry.add
    (Registry.counter ~volatile:true s "gc_major_collections")
    t.gc_major;
  Registry.set
    (Registry.gauge ~volatile:true ~merge:`Sum s "gc_allocated_words")
    t.gc_words;
  Registry.add (Registry.counter ~volatile:true s "spans_dropped")
    t.dropped_spans

let pp ppf t =
  Format.fprintf ppf "%-14s %12s %14s %12s@." "phase" "count" "self (s)"
    "mean (ns)";
  Array.iter
    (fun p ->
      let c = count t p in
      if c > 0 then
        Format.fprintf ppf "%-14s %12d %14.4f %12.0f@." (phase_name p) c
          (self_seconds t p)
          (Clock.ns_to_s t.self_ns.(phase_index p) *. 1e9 /. float_of_int c))
    phases;
  Format.fprintf ppf "%-14s %12s %14.4f@." "attributed" ""
    (attributed_seconds t);
  Format.fprintf ppf "gc: %d minor, %d major collections, %.3g words \
                      allocated@."
    t.gc_minor t.gc_major t.gc_words

let write_trace path t =
  let module J = Report.Json in
  let span_json s =
    J.Obj
      [
        ("name", J.Str (phase_name phases.(s.sp_phase)));
        ("ph", J.Str "X");
        ("ts", J.Num (Int64.to_float s.sp_start /. 1e3));
        ("dur", J.Num (Int64.to_float s.sp_dur /. 1e3));
        ("pid", J.int 0);
        ("tid", J.int s.sp_tid);
      ]
  in
  (* Stored newest-first; emit in chronological order. *)
  let ordered =
    List.sort
      (fun a b -> Int64.compare a.sp_start b.sp_start)
      (List.rev t.spans)
  in
  Report.write_jsonl path (List.map span_json ordered)
