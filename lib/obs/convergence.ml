type point = {
  measure : string;
  n : int;
  value : float;
  half_width : float;
  confidence : float;
}

type t = { mutable pts : point list (* newest first *) }

let create () = { pts = [] }

let record ?(half_width = nan) ?(confidence = nan) t ~measure ~n ~value =
  t.pts <- { measure; n; value; half_width; confidence } :: t.pts

let points t = List.rev t.pts
let is_empty t = t.pts = []
let csv_header = [ "measure"; "n"; "value"; "half_width"; "confidence" ]

let cell v = if Float.is_finite v then Report.Json.float_to_string v else ""

let csv_rows t =
  List.map
    (fun p ->
      [
        p.measure; string_of_int p.n; cell p.value; cell p.half_width;
        cell p.confidence;
      ])
    (points t)

let write_csv path t = Report.write_csv_rows path ~header:csv_header (csv_rows t)

let num_or_null v =
  if Float.is_finite v then Report.Json.Num v else Report.Json.Null

let to_json t =
  let module J = Report.Json in
  J.Arr
    (List.map
       (fun p ->
         J.Obj
           [
             ("measure", J.Str p.measure);
             ("n", J.int p.n);
             ("value", num_or_null p.value);
             ("half_width", num_or_null p.half_width);
             ("confidence", num_or_null p.confidence);
           ])
       (points t))
