#!/usr/bin/env python3
"""CI perf-regression gate over BENCH_sim.json (schema itua-bench/1).

Compares the engine_throughput rows of a freshly generated record
against the committed baseline, matched by row name.  A row whose
events/sec dropped by more than the threshold (default 20%) fails the
gate; for every offending row the phase self-times from the embedded
itua-metrics/1 snapshot are printed side by side, so the log already
says WHERE the regression happened (explore vs solve vs effect
propagation vs heap) without a local rerun.

Usage:
    python3 tools/perf_gate.py --baseline bench_baseline.json \
        --fresh BENCH_sim.json [--threshold 0.20]

Exit status: 0 when every matched row is within the threshold,
1 on a regression, 2 on unusable input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"perf gate: cannot read {path}: {e}")
    if doc.get("schema") != "itua-bench/1":
        sys.exit(f"perf gate: {path}: unexpected schema {doc.get('schema')!r}")
    rows = {}
    for row in doc.get("engine_throughput", []):
        rows[row["name"]] = row
    if not rows:
        sys.exit(f"perf gate: {path}: empty engine_throughput array")
    return rows


def phase_self_times(row):
    """name -> seconds for the profile scope's *_self_seconds metrics."""
    out = {}
    snapshot = row.get("metrics")
    if not isinstance(snapshot, dict):
        return out
    for scope in snapshot.get("scopes", []):
        if scope.get("scope") != "profile":
            continue
        for metric in scope.get("metrics", []):
            name = metric.get("name", "")
            if name.endswith("_self_seconds"):
                value = metric.get("value")
                if isinstance(value, (int, float)):
                    out[name[: -len("_self_seconds")]] = float(value)
    return out


def print_phases(name, baseline_row, fresh_row):
    base = phase_self_times(baseline_row)
    fresh = phase_self_times(fresh_row)
    if not base and not fresh:
        print(f"  (no itua-metrics/1 phase snapshot embedded for {name})")
        return
    print(f"  phase self-times of {name} (baseline -> fresh, seconds):")
    for phase in sorted(set(base) | set(fresh)):
        b = base.get(phase)
        f = fresh.get(phase)
        fmt = lambda v: "n/a" if v is None else f"{v:.4f}"
        marker = ""
        if b is not None and f is not None and f > b and b > 0:
            marker = f"  (+{100.0 * (f - b) / b:.0f}%)"
        print(f"    {phase:24s} {fmt(b):>10s} -> {fmt(f):>10s}{marker}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--fresh", required=True)
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum allowed fractional events/sec drop (default 0.20)",
    )
    args = ap.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    for name in sorted(baseline):
        if name not in fresh:
            print(f"perf gate: row {name!r} missing from fresh record "
                  "(renamed or removed benchmark?)")
            continue
        b = baseline[name].get("events_per_sec")
        f = fresh[name].get("events_per_sec")
        if not isinstance(b, (int, float)) or not isinstance(f, (int, float)) \
                or b <= 0:
            print(f"perf gate: row {name!r}: non-numeric events/sec, skipped")
            continue
        drop = (b - f) / b
        status = "FAIL" if drop > args.threshold else "ok"
        print(f"perf gate [{status}]: {name}: {b:.1f} -> {f:.1f} events/sec "
              f"({-100.0 * drop:+.1f}%)")
        if drop > args.threshold:
            failures.append(name)
    for name in sorted(set(fresh) - set(baseline)):
        print(f"perf gate: new row {name!r} (no baseline yet, not gated)")

    if failures:
        print(f"\nperf gate FAILED: {len(failures)} row(s) regressed more "
              f"than {100.0 * args.threshold:.0f}%:")
        for name in failures:
            print_phases(name, baseline[name], fresh[name])
        sys.exit(1)
    print("perf gate OK")


if __name__ == "__main__":
    main()
