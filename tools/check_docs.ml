(* Docs gate: keeps the markdown honest. Two checks, both strict:

   1. Every relative link and anchor in every *.md file of the repo
      resolves: the target file exists, and a #fragment names a real
      heading (GitHub slug rules, including duplicate -1/-2 suffixes)
      in the target.
   2. Every ```ocaml fenced snippet under doc/ appears, contiguously
      and whitespace-normalized, in examples/doc_snippets.ml — which
      the build compiles, so documented code cannot drift from the real
      API. A snippet line containing `...` is a wildcard matching any
      number of lines.
   3. Every ```json fenced snippet under doc/ parses with Report.Json
      (the parser behind the itua-model/1 and itua-analysis/1 formats),
      so documented JSON shapes cannot drift into invalid syntax.
      Snippets with a `...` elision line are skipped.

   Usage: dune exec tools/check_docs.exe [ROOT]   (default ROOT = .)
   Exits nonzero listing every failure; CI runs it on every push. *)

let failures = ref []

let fail file what = failures := Printf.sprintf "%s: %s" file what :: !failures

(* --- small helpers --- *)

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let trim = String.trim

(* Collapse every whitespace run to one space and trim the ends. *)
let normalize line =
  let b = Buffer.create (String.length line) in
  let pending = ref false in
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' then pending := true
      else begin
        if !pending && Buffer.length b > 0 then Buffer.add_char b ' ';
        pending := false;
        Buffer.add_char b c
      end)
    line;
  Buffer.contents b

(* --- markdown parsing: headings, links, ocaml fences --- *)

(* GitHub heading slug: lowercase, drop everything but alphanumerics,
   hyphens, underscores and spaces, then spaces to hyphens. Duplicate
   slugs in one file get -1, -2, ... suffixes. Multibyte (non-ASCII)
   characters are dropped, which matches GitHub for the punctuation that
   appears in this repo's headings. *)
let slug_of_heading text =
  let b = Buffer.create (String.length text) in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9' | '_' | '-') as c -> Buffer.add_char b c
      | ' ' -> Buffer.add_char b '-'
      | _ -> ())
    (trim text);
  Buffer.contents b

type doc = {
  lines : string list;
  slugs : (string, unit) Hashtbl.t;
  (* (line_number, target) of every markdown link outside code fences *)
  links : (int * string) list;
  (* ocaml fenced snippets: (first line number, lines) *)
  ocaml_snippets : (int * string list) list;
  (* json fenced snippets: (first line number, lines) *)
  json_snippets : (int * string list) list;
}

(* Link targets on one line: every `](target)` occurrence. *)
let link_targets line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i + 1 < n do
    if line.[!i] = ']' && line.[!i + 1] = '(' then begin
      let j = ref (!i + 2) in
      while !j < n && line.[!j] <> ')' do incr j done;
      if !j < n then begin
        out := String.sub line (!i + 2) (!j - !i - 2) :: !out;
        i := !j
      end
    end;
    incr i
  done;
  List.rev !out

let parse_markdown path =
  let lines = read_lines path in
  let slugs = Hashtbl.create 16 in
  let slug_counts = Hashtbl.create 16 in
  let links = ref [] in
  let snippets = ref [] in
  let json_snips = ref [] in
  let in_fence = ref false in
  let fence_is_ocaml = ref false in
  let fence_is_json = ref false in
  let fence_buf = ref [] in
  let fence_start = ref 0 in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      if starts_with "```" (trim line) then begin
        if !in_fence then begin
          if !fence_is_ocaml then
            snippets := (!fence_start, List.rev !fence_buf) :: !snippets;
          if !fence_is_json then
            json_snips := (!fence_start, List.rev !fence_buf) :: !json_snips;
          in_fence := false
        end
        else begin
          in_fence := true;
          fence_is_ocaml := trim line = "```ocaml";
          fence_is_json := trim line = "```json";
          fence_buf := [];
          fence_start := lineno + 1
        end
      end
      else if !in_fence then begin
        if !fence_is_ocaml || !fence_is_json then
          fence_buf := line :: !fence_buf
      end
      else begin
        if starts_with "#" (trim line) then begin
          let text =
            let t = trim line in
            let i = ref 0 in
            while !i < String.length t && t.[!i] = '#' do incr i done;
            String.sub t !i (String.length t - !i)
          in
          let s = slug_of_heading text in
          let n =
            match Hashtbl.find_opt slug_counts s with
            | None -> 0
            | Some n -> n
          in
          Hashtbl.replace slug_counts s (n + 1);
          let s = if n = 0 then s else Printf.sprintf "%s-%d" s n in
          Hashtbl.replace slugs s ()
        end;
        List.iter
          (fun t -> links := (lineno, t) :: !links)
          (link_targets line)
      end)
    lines;
  {
    lines;
    slugs;
    links = List.rev !links;
    ocaml_snippets = List.rev !snippets;
    json_snippets = List.rev !json_snips;
  }

(* --- the checks --- *)

let doc_cache : (string, doc) Hashtbl.t = Hashtbl.create 32

let doc_of path =
  match Hashtbl.find_opt doc_cache path with
  | Some d -> d
  | None ->
      let d = parse_markdown path in
      Hashtbl.add doc_cache path d;
      d

let links_checked = ref 0

let check_link ~file (lineno, target) =
  let where what = fail file (Printf.sprintf "line %d: %s" lineno what) in
  let target = trim target in
  if
    target = "" || contains_sub target "://" || starts_with "mailto:" target
    || starts_with "<" target
  then ()
  else begin
    incr links_checked;
    let path, anchor =
      match String.index_opt target '#' with
      | None -> (target, None)
      | Some i ->
          ( String.sub target 0 i,
            Some (String.sub target (i + 1) (String.length target - i - 1)) )
    in
    let resolved =
      if path = "" then file else Filename.concat (Filename.dirname file) path
    in
    if not (Sys.file_exists resolved) then
      where (Printf.sprintf "broken link: %s (no such file)" path)
    else
      match anchor with
      | None -> ()
      | Some a ->
          if Filename.check_suffix resolved ".md" then begin
            let d = doc_of resolved in
            if not (Hashtbl.mem d.slugs a) then
              where
                (Printf.sprintf "broken anchor: %s#%s (no such heading)" path
                   a)
          end
  end

(* Snippet containment: every non-wildcard snippet line must appear in
   the mirror, in order, contiguously except across `...` lines. *)
let snippet_found ~mirror snippet =
  let wild l = contains_sub l "..." in
  let sn = Array.of_list snippet in
  let fl = Array.of_list mirror in
  let n = Array.length fl and m = Array.length sn in
  let rec go i j =
    if j = m then true
    else if wild sn.(j) then go i (j + 1) || (i < n && go (i + 1) j)
    else i < n && fl.(i) = sn.(j) && go (i + 1) (j + 1)
  in
  let rec from i = i <= n && (go i 0 || from (i + 1)) in
  from 0

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let md_files = ref [] in
  let rec walk dir =
    Array.iter
      (fun name ->
        let path = Filename.concat dir name in
        if Sys.is_directory path then begin
          if
            (not (starts_with "." name))
            && name <> "_build" && name <> "results" && name <> "node_modules"
          then walk path
        end
        else if Filename.check_suffix name ".md" then
          md_files := path :: !md_files)
      (Sys.readdir dir)
  in
  walk root;
  let md_files = List.sort compare !md_files in
  let mirror_path = Filename.concat root "examples/doc_snippets.ml" in
  let mirror =
    if Sys.file_exists mirror_path then
      read_lines mirror_path |> List.map normalize
      |> List.filter (fun l -> l <> "")
    else begin
      fail mirror_path "missing snippet mirror";
      []
    end
  in
  let snippets_checked = ref 0 in
  let json_checked = ref 0 in
  List.iter
    (fun file ->
      let d = doc_of file in
      List.iter (check_link ~file) d.links;
      (* Snippet mirroring and JSON validity are required for the doc/
         guides only. *)
      if Filename.basename (Filename.dirname file) = "doc" then begin
        List.iter
          (fun (lineno, snippet) ->
            let norm =
              List.map normalize snippet |> List.filter (fun l -> l <> "")
            in
            if norm <> [] then begin
              incr snippets_checked;
              if not (snippet_found ~mirror norm) then
                fail file
                  (Printf.sprintf
                     "line %d: ocaml snippet not mirrored in %s (edit one \
                      side to match the other)"
                     lineno mirror_path)
            end)
          d.ocaml_snippets;
        List.iter
          (fun (lineno, snippet) ->
            (* A `...` elision line marks a deliberately partial
               document; everything else must be valid JSON. *)
            if not (List.exists (fun l -> contains_sub l "...") snippet)
            then begin
              incr json_checked;
              match Report.Json.of_string (String.concat "\n" snippet) with
              | Ok _ -> ()
              | Error e ->
                  fail file
                    (Printf.sprintf "line %d: invalid json snippet: %s"
                       lineno e)
            end)
          d.json_snippets
      end)
    md_files;
  match List.rev !failures with
  | [] ->
      Printf.printf "docs check: %d markdown files, %d relative links, %d \
                     ocaml snippets, %d json snippets — OK\n"
        (List.length md_files) !links_checked !snippets_checked !json_checked
  | fs ->
      List.iter (fun f -> Printf.eprintf "%s\n" f) fs;
      Printf.eprintf "docs check: %d failure(s)\n" (List.length fs);
      exit 1
