(* Regenerates the committed golden model files:

     test/golden/<fixture>.model.json   (test-support fixtures)
     examples/itua.model.json           (small ITUA configuration)

   Run from the repository root after an intentional format change:

     dune exec tools/gen_golden.exe

   The fixture parameters and the ITUA topology must stay in sync with
   test/test_serial.ml and the CI golden gate. *)

let write path doc =
  Serial.save path doc;
  Printf.printf "wrote %s\n" path

let () =
  List.iter
    (fun (name, model) ->
      write
        (Filename.concat "test/golden" (name ^ ".model.json"))
        (Serial.to_json model))
    [
      ( "two_state",
        (Test_models.two_state ~lambda:0.2 ~mu:1.0).Test_models.ts_model );
      ("mm1k", (Test_models.mm1k ~lambda:0.8 ~mu:1.0 ~k:5).Test_models.q_model);
      ("tandem", (Test_models.tandem ~r1:1.0 ~r2:0.5).Test_models.td_model);
      ("gong", (Test_models.gong ()).Test_models.g_model);
    ];
  let p =
    {
      Itua.Params.default with
      num_domains = 2;
      hosts_per_domain = 2;
      num_apps = 2;
      num_reps = 2;
    }
  in
  let h = Itua.Model.build p in
  write "examples/itua.model.json"
    (Serial.to_json
       ~composition:h.Itua.Model.composition
       ~annotations:[ ("params", Itua.Params.to_json p) ]
       h.Itua.Model.model)
